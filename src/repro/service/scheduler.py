"""Async job scheduler with sharded worker-pool execution.

:class:`SolveScheduler` is the service's execution core:

* an :class:`asyncio.PriorityQueue` orders submitted jobs by (priority,
  arrival); cancellation and relative deadlines are honoured both while
  queued and (for deadlines) while running;
* a ``concurrent.futures`` worker pool executes the actual solves.  A
  ``"cnash"`` request with ``num_runs=N`` is *sharded*: the run budget
  is split into fixed-size sub-batches whose seeds derive from the
  request seed and the shard index alone (:func:`repro.utils.rng.shard_seeds`),
  the shards run concurrently across the pool, and the per-shard
  batches are merged back into one :class:`SolverBatchResult` in shard
  order — so the merged result is bit-identical for any worker count;
* a content-addressed :class:`~repro.service.cache.ResultCache` serves
  repeat requests without recomputation (seeded requests only).

The scheduler is transport-agnostic: the TCP server
(:mod:`repro.service.server`), the in-process client
(:mod:`repro.service.client`) and the experiment runner's ``--service``
path all sit on top of exactly this class.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import itertools
import os
import time
import uuid
from collections import deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.result import SolverBatchResult
from repro.games.bimatrix import BimatrixGame
from repro.service.batching import (
    DEFAULT_MAX_BATCH_JOBS,
    DEFAULT_MAX_BATCH_LINGER_MS,
    compute_batch_key,
    execute_job_batch_payload,
)
from repro.service.cache import ResultCache
from repro.service.jobs import JobRecord, JobStatus, SolveOutcome, SolveRequest
from repro.service.portfolio import (
    adopt_portfolio_attempt,
    cnash_is_builtin,
    execute_request_payload,
    has_verified_equilibrium,
    member_request,
    outcome_from_batch,
    portfolio_order,
    shard_payloads,
    single_shard_payload,
    solve_shard_payload,
)
from repro.service.resilience import (
    PERMANENT,
    SOLVER_MISS,
    TRANSIENT,
    WORKER_DEATH,
    AdmissionController,
    BreakerBoard,
    CircuitOpen,
    FaultPlan,
    RetryPolicy,
    WorkerPoolSupervisor,
    active_fault_plan,
    classify_failure,
    install_fault_plan,
    retry_seed,
)
from repro.telemetry import Timeline, get_logger
from repro.telemetry import enabled as telemetry_enabled
from repro.telemetry import registry as telemetry_registry

#: Executor kinds accepted by :class:`SolveScheduler`.
EXECUTOR_KINDS = ("process", "thread", "inline")

#: Default number of runs per shard of a sharded C-Nash batch.
DEFAULT_SHARD_SIZE = 64

#: Default number of *finished* job records retained for status lookups.
DEFAULT_FINISHED_JOB_LIMIT = 1024

logger = get_logger("repro.service.scheduler")


def _scheduler_metrics() -> Dict[str, Any]:
    """Declare the scheduler's metric families on the current registry.

    Resolved once per scheduler at construction, so a test wrapping
    scheduler creation in :func:`repro.telemetry.temporary_registry`
    observes that scheduler alone.  The counter keys deliberately mirror
    the deprecated ``self.counters`` dict so both stay in lockstep.
    Label-less entries are resolved to their child time series here —
    ``child.inc()`` skips the per-call label-key build, which matters at
    several increments per job on the dispatch loop thread.
    """
    reg = telemetry_registry()

    def counter(name: str, help: str):
        return reg.counter(name, help).labels()

    return {
        "submitted": counter("repro_scheduler_jobs_submitted_total",
                             "Jobs accepted by submit()"),
        "completed": counter("repro_scheduler_jobs_completed_total",
                             "Jobs finished with a computed outcome"),
        "failed": counter("repro_scheduler_jobs_failed_total",
                          "Jobs that raised in a worker or transport"),
        "cancelled": counter("repro_scheduler_jobs_cancelled_total",
                             "Jobs cancelled before execution"),
        "expired": counter("repro_scheduler_jobs_expired_total",
                           "Jobs whose deadline passed before completion"),
        "cache_hits": counter("repro_scheduler_cache_hits_total",
                              "Jobs served from the result cache at submit"),
        "coalesced": counter("repro_scheduler_jobs_coalesced_total",
                             "Duplicate jobs that adopted an in-flight leader"),
        "shards_executed": counter("repro_scheduler_shards_executed_total",
                                   "Worker shard executions dispatched"),
        "batches_dispatched": counter("repro_scheduler_batches_dispatched_total",
                                      "Coalesced batches shipped to workers"),
        "batched_jobs": counter("repro_scheduler_batched_jobs_total",
                                "Jobs that rode a coalesced batch dispatch"),
        "shm_games_shared": counter("repro_scheduler_shm_games_shared_total",
                                    "Dense games moved via shared memory"),
        "quarantined": counter("repro_resilience_quarantined_total",
                               "Jobs quarantined as poison pills after repeated worker deaths"),
        # Kept as the family: incremented with a fault_class label.
        "retries": reg.counter("repro_resilience_retries_total",
                               "Retry attempts scheduled, by fault class"),
        "queue_depth": reg.gauge("repro_scheduler_queue_depth",
                                 "Jobs waiting in the priority queue").labels(),
        "inflight": reg.gauge("repro_scheduler_jobs_inflight",
                              "Jobs currently in the running state").labels(),
        # Kept as the family: observed with policy/status labels.
        "latency": reg.histogram(
            "repro_scheduler_job_latency_seconds",
            "Submit-to-terminal latency per job, by policy and status"),
        "batch_jobs": reg.histogram(
            "repro_scheduler_batch_jobs",
            "Jobs per coalesced batch dispatch",
            boundaries=(1, 2, 4, 8, 16, 32, 64, 128)).labels(),
        "batch_linger": reg.histogram(
            "repro_scheduler_batch_linger_seconds",
            "Time a batch leader lingered for companions",
            boundaries=(0.0001, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                        0.025, 0.05, 0.1, 0.25)).labels(),
    }


class _InlineExecutor(Executor):
    """Runs submissions synchronously on the caller (tests / debugging)."""

    def submit(self, fn: Callable, /, *args, **kwargs):  # type: ignore[override]
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirror Executor semantics
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        return None


def _make_executor(kind: str, max_workers: Optional[int]) -> Executor:
    if kind == "process":
        return ProcessPoolExecutor(max_workers=max_workers)
    if kind == "thread":
        return ThreadPoolExecutor(max_workers=max_workers)
    if kind == "inline":
        return _InlineExecutor()
    raise ValueError(f"executor must be one of {EXECUTOR_KINDS}, got {kind!r}")


class SolveScheduler:
    """Priority job queue + sharded worker-pool execution + result cache.

    Parameters
    ----------
    max_workers:
        Worker-pool size (``None`` = the executor's default).  Also the
        number of shards allowed in flight at once.
    shard_size:
        Runs per shard for ``"cnash"`` batches.  Part of the *result
        contract*: the shard plan (and therefore every derived shard
        seed) depends only on the request and this value, never on
        ``max_workers``.
    cache:
        Result cache; ``None`` builds a default in-memory LRU.  Pass a
        cache with a ``directory`` for the persistent tier.
    executor:
        ``"process"`` (default — true parallelism across cores),
        ``"thread"`` (cheap startup; fine for small jobs and tests) or
        ``"inline"`` (synchronous, single-threaded debugging).
    dispatch_concurrency:
        How many jobs may be in the execution stage simultaneously.
        Shards of one job already fan out across the pool, so the
        default matches the worker count.
    finished_job_limit:
        How many terminal job records to keep for ``status`` lookups.
        Oldest finished records (and their events) are evicted beyond
        this bound so a long-running server does not grow without
        limit; clients that hold a :class:`JobRecord` reference keep it
        regardless.
    max_batch_jobs:
        Ceiling on compatible queued jobs coalesced into one worker
        dispatch (see :mod:`repro.service.batching`).  ``1`` disables
        batching entirely.  Batched results are bit-identical to
        per-job dispatch — same shard seeds, same cache keys — so this
        is purely a throughput knob.
    max_batch_linger_ms:
        How long (milliseconds) a dispatcher holding a batchable job
        may wait for more compatible arrivals before dispatching a
        partial batch.  The default ``0`` coalesces opportunistically —
        only jobs *already queued* join, adding no latency; raise it on
        throughput-bound sweeps where a fuller batch is worth a bounded
        wait.
    retry_policy:
        Per-fault-class retry rules
        (:class:`~repro.service.resilience.RetryPolicy`).  The default
        retries infrastructure faults (worker deaths, transient errors)
        once with bit-identical seeds and leaves solver-miss escalation
        off; ``RetryPolicy.disabled()`` turns all retrying off.
    max_queue_depth:
        Admission-control bound on the dispatch queue.  ``None`` (the
        default) keeps the queue unbounded; with a bound set, submits
        past capacity are shed with a typed
        :class:`~repro.service.resilience.Overloaded` (background
        priorities are shed earlier than interactive ones).
    worker_timeout_s:
        Heartbeat deadline for a single worker-pool call.  ``None``
        (the default) never times a worker out; with a deadline set, a
        hung worker is detected, the pool is rebuilt, and the affected
        jobs retry under the ``worker_death`` rules.
    breaker_threshold / breaker_cooldown_s:
        Per-backend circuit breaker tuning: consecutive infrastructure
        failures before a backend's breaker opens, and how long it stays
        open before admitting a half-open probe.
    fault_plan:
        Optional :class:`~repro.service.resilience.FaultPlan` injected
        into every worker dispatch (chaos testing only).

    Use as an async context manager::

        async with SolveScheduler(max_workers=4) as scheduler:
            record = await scheduler.submit(request)
            outcome = await scheduler.wait(record.job_id)
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        cache: Optional[ResultCache] = None,
        executor: str = "process",
        dispatch_concurrency: Optional[int] = None,
        finished_job_limit: int = DEFAULT_FINISHED_JOB_LIMIT,
        max_batch_jobs: int = DEFAULT_MAX_BATCH_JOBS,
        max_batch_linger_ms: float = DEFAULT_MAX_BATCH_LINGER_MS,
        retry_policy: Optional[RetryPolicy] = None,
        max_queue_depth: Optional[int] = None,
        worker_timeout_s: Optional[float] = None,
        breaker_threshold: int = 8,
        breaker_cooldown_s: float = 30.0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if worker_timeout_s is not None and worker_timeout_s <= 0:
            raise ValueError(f"worker_timeout_s must be positive, got {worker_timeout_s}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if max_batch_jobs < 1:
            raise ValueError(f"max_batch_jobs must be >= 1, got {max_batch_jobs}")
        if max_batch_linger_ms < 0:
            raise ValueError(
                f"max_batch_linger_ms must be >= 0, got {max_batch_linger_ms}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if finished_job_limit < 1:
            raise ValueError(f"finished_job_limit must be >= 1, got {finished_job_limit}")
        if executor not in EXECUTOR_KINDS:
            raise ValueError(f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}")
        self.max_workers = max_workers
        self.shard_size = shard_size
        self.max_batch_jobs = max_batch_jobs
        self.max_batch_linger_ms = max_batch_linger_ms
        self.cache = cache if cache is not None else ResultCache()
        self.executor_kind = executor
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.worker_timeout_s = worker_timeout_s
        self.fault_plan = fault_plan
        self._admission = AdmissionController(max_queue_depth=max_queue_depth)
        self._breakers = BreakerBoard(
            failure_threshold=breaker_threshold, cooldown_s=breaker_cooldown_s
        )
        self._supervisor: Optional[WorkerPoolSupervisor] = None
        self._retry_tasks: set = set()
        # Created in start(): asyncio.Queue binds the running loop on
        # construction on older Pythons, and start() runs on the loop
        # that will serve the queue (__init__ may run on another thread).
        self._queue: Optional["asyncio.PriorityQueue"] = None
        self._sequence = itertools.count()
        self._jobs: Dict[str, JobRecord] = {}
        self._events: Dict[str, asyncio.Event] = {}
        self._inflight: Dict[str, JobRecord] = {}
        self._batch_keys: Dict[str, Optional[str]] = {}
        self._linger_seconds = 0.0
        self._followers: set = set()
        self.finished_job_limit = finished_job_limit
        self._finished_order: Deque[str] = deque()
        self._dispatchers: List[asyncio.Task] = []
        self._started = False
        self._closed = False
        concurrency = dispatch_concurrency
        if concurrency is None:
            concurrency = max_workers if max_workers is not None else 4
        self._dispatch_concurrency = max(1, concurrency)
        #: Deprecated alias — the canonical counters are the
        #: ``repro_scheduler_*`` telemetry metrics (:meth:`telemetry`);
        #: this dict mirrors them per instance for one more release.
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "expired": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "shards_executed": 0,
            "batches_dispatched": 0,
            "batched_jobs": 0,
            "shm_games_shared": 0,
            "retried": 0,
            "quarantined": 0,
        }
        self._registry = telemetry_registry()
        self._metrics = _scheduler_metrics()
        # (policy, status) -> latency histogram child, so the per-job
        # observation skips the label-key build on the dispatch thread.
        self._latency_children: Dict[Tuple[str, str], Any] = {}
        self._running_jobs = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def _executor(self) -> Optional[Executor]:
        """The live worker pool (owned by the supervisor across rebuilds)."""
        return None if self._supervisor is None else self._supervisor.executor

    async def start(self) -> "SolveScheduler":
        """Create the worker pool and the dispatch tasks."""
        if self._started:
            return self
        self._supervisor = WorkerPoolSupervisor(
            lambda: _make_executor(self.executor_kind, self.max_workers)
        )
        if self.fault_plan is not None:
            # Thread/inline workers share this process's globals; process
            # workers additionally get the plan on every payload.
            install_fault_plan(self.fault_plan)
        self._queue = asyncio.PriorityQueue()
        self._dispatchers = [
            asyncio.get_running_loop().create_task(self._dispatch_loop())
            for _ in range(self._dispatch_concurrency)
        ]
        # Live-state gauges are computed at scrape time; with several
        # schedulers on one registry the most recently started wins.
        self._metrics["queue_depth"].set_function(
            lambda: self._queue.qsize() if self._queue is not None else 0
        )
        self._metrics["inflight"].set_function(lambda: self._running_jobs)
        self._started = True
        return self

    async def close(self) -> None:
        """Stop dispatching and shut the worker pool down."""
        if self._closed:
            return
        self._closed = True
        pending = list(self._dispatchers) + list(self._followers) + list(self._retry_tasks)
        for task in pending:
            task.cancel()
        for task in pending:
            try:
                await task
            except asyncio.CancelledError:
                pass
        if self._supervisor is not None:
            self._supervisor.shutdown(wait=False)
        if self.fault_plan is not None and active_fault_plan() is self.fault_plan:
            install_fault_plan(None)
        self._metrics["queue_depth"].set_function(None)
        self._metrics["inflight"].set_function(None)
        # Anything still queued will never run.  (Snapshot: _finish may
        # evict old records from the job table as it marks these.)
        for record in list(self._jobs.values()):
            if not record.done:
                self._count("cancelled")
                self._finish(record, JobStatus.CANCELLED, error="scheduler closed")

    async def __aenter__(self) -> "SolveScheduler":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    async def submit(self, request: SolveRequest, priority: Optional[int] = None) -> JobRecord:
        """Queue a request; returns its job record immediately.

        ``priority`` overrides ``request.priority`` (lower runs first).
        Cache hits resolve synchronously — the returned record is
        already ``done`` with ``cache_hit=True`` and nothing is queued.
        A cacheable request identical to one already queued or running
        is *coalesced* onto the in-flight job instead of computing the
        same work twice; it resolves when the leader does.

        With admission control enabled (``max_queue_depth``), an
        over-capacity submit raises a typed
        :class:`~repro.service.resilience.Overloaded` before any state
        is created; a job whose backend breaker is open raises
        :class:`~repro.service.resilience.CircuitOpen` (after the cache
        and coalescing checks — neither touches the backend).
        """
        if not self._started or self._closed:
            raise RuntimeError("scheduler is not running (use 'async with' or call start())")
        effective_priority = request.priority if priority is None else priority
        self._admission.admit(self._queue.qsize(), priority=effective_priority)
        record = JobRecord(request=request)
        if telemetry_enabled():
            record.timeline = Timeline()
        self._jobs[record.job_id] = record
        self._events[record.job_id] = asyncio.Event()
        self._count("submitted")

        if request.cacheable:
            key = self._cache_key(request)
            cached = await self._cache_get(key)
            if cached is not None:
                record.cache_hit = True
                record.outcome = SolveOutcome.from_dict(cached)
                self._count("cache_hits")
                self._finish(record, JobStatus.DONE)
                return record
            leader = self._inflight.get(key)
            if leader is not None and not leader.done:
                self._count("coalesced")
                follower = asyncio.get_running_loop().create_task(
                    self._follow(
                        leader, self._events[leader.job_id], record, effective_priority
                    )
                )
                self._followers.add(follower)
                follower.add_done_callback(self._followers.discard)
                return record
            self._admit_backend(record)
            self._inflight[key] = record
        else:
            self._admit_backend(record)

        await self._queue.put((effective_priority, next(self._sequence), record.job_id))
        return record

    def _admit_backend(self, record: JobRecord) -> None:
        """Gate a job on its backend's circuit breaker before it queues.

        Runs after the cache/coalescing checks — a cache hit touches no
        backend, so an open breaker must not reject it.  A rejected job
        is finished ``FAILED`` (so its record and completion event stay
        consistent) before the :class:`CircuitOpen` propagates to the
        submitter.
        """
        try:
            self._breakers.admit(record.request.policy)
        except CircuitOpen as exc:
            self._count("failed")
            self._finish(record, JobStatus.FAILED, error=str(exc))
            raise

    async def _follow(
        self,
        leader: JobRecord,
        leader_event: asyncio.Event,
        record: JobRecord,
        priority: int,
    ) -> None:
        """Resolve a coalesced duplicate when its in-flight leader finishes.

        The follower's own deadline keeps ticking while it waits.  If
        the leader fails (or is cancelled/expired) the follower does not
        inherit the failure: it retries through the cache, follows a new
        in-flight leader if one appeared, or becomes the leader itself —
        so a burst of duplicates behind a failed leader still computes
        the work at most once at a time.
        """
        while True:
            remaining = record.deadline_remaining()
            try:
                if remaining is None:
                    await leader_event.wait()
                else:
                    await asyncio.wait_for(leader_event.wait(), remaining)
            except asyncio.TimeoutError:
                if not record.done:
                    self._count("expired")
                    self._finish(
                        record, JobStatus.EXPIRED, error="deadline expired while coalesced"
                    )
                return
            if record.done:  # cancelled while following
                return
            if leader.status == JobStatus.DONE and leader.outcome is not None:
                record.outcome = leader.outcome
                record.cache_hit = True
                self._finish(record, JobStatus.DONE)
                return
            # Leader failed/cancelled/expired: re-enter the coalescing path.
            key = self._cache_key(record.request)
            cached = await self._cache_get(key)
            if record.done:  # cancelled during the cache lookup
                return
            if cached is not None:
                record.cache_hit = True
                record.outcome = SolveOutcome.from_dict(cached)
                self._count("cache_hits")
                self._finish(record, JobStatus.DONE)
                return
            new_leader = self._inflight.get(key)
            if new_leader is not None and not new_leader.done:
                leader = new_leader
                leader_event = self._events[new_leader.job_id]
                continue
            self._inflight[key] = record
            await self._queue.put((priority, next(self._sequence), record.job_id))
            return

    async def solve(self, request: SolveRequest, priority: Optional[int] = None) -> SolveOutcome:
        """Submit and wait; raises on failure/cancellation/expiry."""
        record = await self.submit(request, priority=priority)
        return await self.wait(record.job_id)

    async def wait(self, job_id: str) -> SolveOutcome:
        """Wait for a job to reach a terminal state; return its outcome."""
        record = self.job(job_id)
        await self._events[job_id].wait()
        if record.status == JobStatus.DONE and record.outcome is not None:
            return record.outcome
        raise RuntimeError(f"job {job_id} {record.status}: {record.error or 'no outcome'}")

    def job(self, job_id: str) -> JobRecord:
        """Look up a job record (raises ``KeyError`` for unknown ids).

        Finished records are retained up to ``finished_job_limit`` and
        then evicted, so a very late lookup of an old job can miss.
        """
        if job_id not in self._jobs:
            raise KeyError(
                f"unknown job id {job_id!r} (finished jobs are retained up to "
                f"finished_job_limit={self.finished_job_limit}, then evicted)"
            )
        return self._jobs[job_id]

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started yet.

        Returns ``True`` when the job was cancelled; ``False`` when it
        is already running or finished (running jobs are not killed —
        worker processes complete their shards, but the result is
        discarded only in the sense that the job already resolved).
        """
        record = self.job(job_id)
        if record.status != JobStatus.PENDING:
            return False
        self._count("cancelled")
        self._finish(record, JobStatus.CANCELLED, error="cancelled by client")
        return True

    def _count(self, key: str, amount: int = 1) -> None:
        """Increment a counter in both surfaces (legacy dict + registry)."""
        self.counters[key] += amount
        self._metrics[key].inc(amount)

    def telemetry(self) -> Dict[str, Any]:
        """Snapshot of the telemetry registry this scheduler reports to.

        The ``stats()``-superseding surface: every counter in
        :meth:`stats` appears here as a ``repro_<subsystem>_<metric>``
        family, plus latency/batch-size histograms and live gauges —
        aggregated process-wide (worker-process deltas included).
        """
        return self._registry.snapshot()

    def stats(self) -> Dict[str, Any]:
        """Scheduler counters, queue depth, batching and cache statistics.

        .. deprecated:: PR 7
            Kept as an alias for one release; prefer :meth:`telemetry`,
            which exposes the same counts under the unified
            ``repro_<subsystem>_<metric>`` naming scheme.
        """
        batches = self.counters["batches_dispatched"]
        batched_jobs = self.counters["batched_jobs"]
        return {
            "counters": dict(self.counters),
            "queue_depth": 0 if self._queue is None else self._queue.qsize(),
            "jobs": len(self._jobs),
            "shard_size": self.shard_size,
            "executor": self.executor_kind,
            "batching": {
                "max_batch_jobs": self.max_batch_jobs,
                "max_batch_linger_ms": self.max_batch_linger_ms,
                "batches_dispatched": batches,
                "batched_jobs": batched_jobs,
                "mean_jobs_per_batch": (batched_jobs / batches) if batches else 0.0,
                "linger_ms_total": self._linger_seconds * 1000.0,
                "mean_linger_ms_per_batch": (
                    self._linger_seconds * 1000.0 / batches if batches else 0.0
                ),
            },
            "cache": self.cache.stats.to_dict(),
            "resilience": {
                "retry_policy": self.retry_policy.to_dict(),
                "retried": self.counters["retried"],
                "quarantined": self.counters["quarantined"],
                "admission": self._admission.snapshot(),
                "breakers": self._breakers.snapshot(),
                "supervisor": (
                    None if self._supervisor is None else self._supervisor.snapshot()
                ),
            },
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            _, _, job_id = await self._queue.get()
            record = self._jobs.get(job_id)
            if record is None or record.done:
                # Cancelled while queued (and possibly already evicted
                # from the bounded job table) — nothing to run.
                continue
            if record.timeline is not None:
                record.timeline.cut("queue")
            remaining = record.deadline_remaining()
            if remaining is not None and remaining <= 0:
                self._count("expired")
                self._finish(record, JobStatus.EXPIRED, error="deadline expired in queue")
                continue
            if self.max_batch_jobs > 1 and self._batch_key_for(record) is not None:
                batch = await self._drain_batch(record)
                if len(batch) > 1:
                    await self._execute_batch(batch)
                    continue
                if not batch:
                    continue  # the leader was cancelled while lingering
                record = batch[0]
                # A batch of one takes the solo path below unchanged
                # (including the per-job deadline wait_for semantics).
                remaining = record.deadline_remaining()
            record.status = JobStatus.RUNNING
            record.started_at = time.time()
            self._running_jobs += 1
            try:
                execute = self._execute(self._effective_request(record))
                if remaining is None:
                    outcome = await execute
                else:
                    outcome = await asyncio.wait_for(execute, remaining)
            except asyncio.TimeoutError:
                self._count("expired")
                self._finish(record, JobStatus.EXPIRED, error="deadline expired while running")
                continue
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                if self._handle_execution_failure(record, exc, stage="solo dispatch"):
                    continue
                self._count("failed")
                self._log_job_failure(record, exc, stage="solo dispatch")
                self._finish(record, JobStatus.FAILED, error=f"{type(exc).__name__}: {exc}")
                continue
            self._relabel_outcome(record, outcome)
            if record.timeline is not None:
                record.timeline.cut("run", policy=record.request.policy)
            if self._maybe_escalate_solver_miss(record, outcome):
                continue
            self._breakers.on_success(record.request.policy)
            record.outcome = outcome
            if record.request.cacheable:
                await self._cache_put(self._cache_key(record.request), outcome.to_dict())
            self._count("completed")
            self._finish(record, JobStatus.DONE)

    # ------------------------------------------------------------------
    # Batched dispatch
    # ------------------------------------------------------------------
    def _batch_key_for(self, record: JobRecord) -> Optional[str]:
        """The record's coalescing key (memoised; ``None`` = never batched)."""
        if record.no_batch:
            # Worker-death retries and escalated attempts dispatch solo:
            # a repeat crash must uniquely identify the poison job, and
            # escalated requests differ from the record's own request.
            return None
        job_id = record.job_id
        if job_id not in self._batch_keys:
            self._batch_keys[job_id] = compute_batch_key(record.request, self.shard_size)
        return self._batch_keys[job_id]

    async def _drain_batch(self, leader: JobRecord) -> List[JobRecord]:
        """Coalesce queued jobs compatible with ``leader`` into one batch.

        Opportunistically drains the queue for jobs sharing the leader's
        batch key; incompatible jobs are re-queued with their original
        (priority, sequence) so their heap position is unchanged.  With
        ``max_batch_linger_ms > 0`` a partial batch then waits (bounded)
        for more compatible arrivals — incompatible jobs that arrive
        during the linger are held and re-queued when it ends, so the
        linger trades *everyone's* latency for batch fullness; that is
        why it defaults to off.  Cancelled jobs are dropped and expired
        deadlines are honoured exactly as the solo pop does.
        """
        key = self._batch_key_for(leader)
        batch = [leader]
        requeue: List[tuple] = []
        while len(batch) < self.max_batch_jobs:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._consider_queue_item(item, key, batch, requeue)
        if self.max_batch_linger_ms > 0 and len(batch) < self.max_batch_jobs:
            loop = asyncio.get_running_loop()
            linger_start = loop.time()
            deadline = linger_start + self.max_batch_linger_ms / 1000.0
            while len(batch) < self.max_batch_jobs:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                self._consider_queue_item(item, key, batch, requeue)
            lingered = loop.time() - linger_start
            self._linger_seconds += lingered
            self._metrics["batch_linger"].observe(lingered)
        for item in requeue:
            self._queue.put_nowait(item)
        # Drop members cancelled while the batch was forming.
        return [record for record in batch if not record.done]

    def _consider_queue_item(
        self,
        item: tuple,
        key: str,
        batch: List[JobRecord],
        requeue: List[tuple],
    ) -> None:
        """Route one popped queue item: join the batch, re-queue, or finish."""
        _, _, job_id = item
        record = self._jobs.get(job_id)
        if record is None or record.done:
            return  # cancelled while queued — same as the solo pop
        remaining = record.deadline_remaining()
        if remaining is not None and remaining <= 0:
            self._count("expired")
            self._finish(record, JobStatus.EXPIRED, error="deadline expired in queue")
            return
        if self._batch_key_for(record) == key:
            if record.timeline is not None:
                record.timeline.cut("queue")
            batch.append(record)
        else:
            requeue.append(item)

    async def _execute_batch(self, batch: List[JobRecord]) -> None:
        """Ship a coalesced batch to one worker; settle every member.

        Failure isolation mirrors the solo path per job: a job that
        raises in the worker (or whose deadline expired by completion)
        fails/expires alone, and ``_finish`` releases each job's spec
        materialisation individually.  A transport-level failure (the
        worker call itself raises) fails all still-live members — unless
        the retry policy absorbs it (worker deaths re-enqueue each
        member solo with bit-identical seeds).
        """
        self._count("batches_dispatched")
        self._count("batched_jobs", len(batch))
        self._metrics["batch_jobs"].observe(len(batch))
        batch_id = uuid.uuid4().hex[:12]
        jobs: List[Dict[str, Any]] = []
        segments: List[Any] = []
        share_dense = self.executor_kind == "process"
        if share_dense:
            from repro.service.shm import SHM_MIN_CELLS, share_game, shm_available

            share_dense = shm_available()
        for record in batch:
            record.status = JobStatus.RUNNING
            record.started_at = time.time()
            self._running_jobs += 1
            if record.timeline is not None:
                record.timeline.cut("coalesce", batch_jobs=len(batch))
            request = record.request
            if request.policy == "cnash":
                # Single-shard by construction (the batch key refuses
                # multi-shard jobs): the one payload carries exactly the
                # shard seed the solo path would derive.
                job = single_shard_payload(request)
                job["kind"] = "cnash_shard"
            else:
                job = {"kind": "generic", "request": request.to_dict()}
            if (
                share_dense
                and isinstance(request.game, BimatrixGame)
                and request.game.payoff_row.size >= SHM_MIN_CELLS
            ):
                try:
                    descriptor, segment = share_game(request.game)
                except OSError:
                    pass  # fall back to the in-payload dense matrices
                else:
                    segments.append(segment)
                    self._count("shm_games_shared")
                    job = dict(job)
                    request_dict = dict(job["request"])
                    request_dict.pop("game", None)
                    job["request"] = request_dict
                    job["game_shm"] = descriptor
            jobs.append(job)
        for record in batch:
            if record.timeline is not None:
                record.timeline.cut("shm", segments=len(segments))
        payload: Dict[str, Any] = {
            "jobs": jobs,
            "batch_id": batch_id,
            "parent_pid": os.getpid(),
        }
        if self.fault_plan is not None:
            payload["fault_plan"] = self.fault_plan.to_dict()
        try:
            response = await self._run_worker(execute_job_batch_payload, payload)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - transport-level failure
            error = f"{type(exc).__name__}: {exc}"
            fault_class = classify_failure(exc)
            logger.error(
                "batch dispatch failed at the transport level",
                extra={
                    "batch_id": batch_id, "jobs": len(batch), "err": error,
                    "fault_class": fault_class,
                },
            )
            # One transport event is one backend failure, not one per
            # member (the batch shares a policy by construction).
            if fault_class != PERMANENT:
                self._breakers.on_failure(batch[0].request.policy)
            for record in batch:
                if record.done:
                    continue
                if self._apply_failure_policy(
                    record, fault_class, error,
                    stage="batch transport", batch_id=batch_id, count_breaker=False,
                ):
                    continue
                self._count("failed")
                self._finish(record, JobStatus.FAILED, error=error)
            return
        finally:
            if segments:
                from repro.service.shm import release_segments

                release_segments(segments)
        # Worker *processes* piggyback their metric increments on the
        # response; fold them into the parent's registry (thread
        # executors share the registry and ship no delta).
        delta = response.get("telemetry")
        if delta:
            self._registry.merge(delta)
        cache_entries: List[tuple] = []
        settled: List[tuple] = []
        for record, result in zip(batch, response["jobs"]):
            if record.done:
                continue
            if record.timeline is not None:
                # Splice the worker's materialise/kernel/settle spans
                # under this job's run window, then close the window.
                offset_ms = record.timeline.cursor_ms()
                record.timeline.splice(result.get("trace"), offset_ms)
                record.timeline.cut(
                    "run", batch_id=batch_id, worker_span=result.get("span_id")
                )
            remaining = record.deadline_remaining()
            if remaining is not None and remaining <= 0:
                self._count("expired")
                self._finish(
                    record, JobStatus.EXPIRED, error="deadline expired while running"
                )
                continue
            if not result["ok"]:
                fault_class = result.get("fault_class") or classify_failure(
                    RuntimeError(result["error"])
                )
                if self._apply_failure_policy(
                    record, fault_class, result["error"],
                    stage="batch member", batch_id=batch_id,
                ):
                    continue
                self._count("failed")
                self._log_job_failure(
                    record, result["error"], stage="batch member", batch_id=batch_id
                )
                self._finish(record, JobStatus.FAILED, error=result["error"])
                continue
            request = record.request
            try:
                # Workers ship finished outcome dicts (C-Nash jobs are
                # settled worker-side, where the game is materialised).
                outcome = SolveOutcome.from_dict(result["result"])
                if outcome.fingerprint != request.fingerprint():
                    # Integrity gate: a worker result must answer the
                    # request it was asked — a mismatch means the payload
                    # was corrupted in flight (an infrastructure fault).
                    raise RuntimeError(
                        "corrupt result payload: worker outcome fingerprint "
                        f"{outcome.fingerprint[:12]}... does not match the request"
                    )
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                if self._handle_execution_failure(
                    record, exc, stage="batch settle", batch_id=batch_id
                ):
                    continue
                self._count("failed")
                self._log_job_failure(
                    record, exc, stage="batch settle", batch_id=batch_id
                )
                self._finish(record, JobStatus.FAILED, error=f"{type(exc).__name__}: {exc}")
                continue
            if self._maybe_escalate_solver_miss(record, outcome):
                continue
            self._breakers.on_success(request.policy)
            if result["kind"] == "cnash_outcome":
                self._count("shards_executed")
            record.outcome = outcome
            if request.cacheable:
                # The worker's dict is exactly outcome.to_dict(); reuse
                # it rather than re-serialising.
                cache_entries.append((self._cache_key(request), result["result"]))
            settled.append(record)
        # One cache hop for the whole batch, and — like the solo path —
        # written before any member's completion event fires.
        await self._cache_put_many(cache_entries)
        for record in settled:
            self._count("completed")
            self._finish(record, JobStatus.DONE)

    async def _cache_put_many(self, entries: List[tuple]) -> None:
        """Batched cache store; disk-tier writes run off the loop in one hop."""
        if not entries:
            return
        if self.cache.directory is None:
            self.cache.put_many(entries)
            return
        await asyncio.get_running_loop().run_in_executor(
            None, self.cache.put_many, entries
        )

    async def _cache_get(self, key: str):
        """Cache lookup; disk-tier reads run off the event loop."""
        if self.cache.directory is None:
            return self.cache.get(key)
        return await asyncio.get_running_loop().run_in_executor(None, self.cache.get, key)

    async def _cache_put(self, key: str, payload: Dict[str, Any]) -> None:
        """Cache store; disk-tier JSON serialisation/writes run off the loop."""
        if self.cache.directory is None:
            self.cache.put(key, payload)
            return
        await asyncio.get_running_loop().run_in_executor(None, self.cache.put, key, payload)

    def _cache_key(self, request: SolveRequest) -> str:
        """Cache key for a request under *this* scheduler's shard plan.

        A sharded ``"cnash"`` batch's runs depend on the shard plan (each
        shard's seed derives from its index), so the same request solved
        under a different ``shard_size`` yields a statistically
        equivalent but not bit-identical batch.  Folding the shard size
        into the key keeps the cache's promise — a hit is exactly what
        this configuration would compute — including across schedulers
        sharing a disk tier.  ``"portfolio"`` outcomes may embed a
        sharded C-Nash batch (the fallback member), so they are keyed
        the same way; the exact/S-QUBO policies skip the shard suffix.

        The registry fingerprint is folded into every key because a
        request's fingerprint names backends, not implementations:
        re-registering a backend (or re-ordering the portfolio) must not
        serve outcomes the previous implementation computed.  With only
        the built-ins registered the digest is a deterministic constant,
        so keys stay stable across restarts sharing a disk tier.
        """
        from repro.backends import registry_fingerprint

        fingerprint = request.fingerprint()
        suffix = f":registry={registry_fingerprint()}"
        if request.policy in ("cnash", "portfolio"):
            suffix += f":shard_size={self.shard_size}"
        retry_token = self.retry_policy.fingerprint_token()
        if retry_token is not None:
            # Solver-miss escalation can change which bytes a request
            # returns (fresh seeds, stronger backends), so escalated
            # configurations get their own cache namespace.
            suffix += f":retry={retry_token}"
        return hashlib.sha256(f"{fingerprint}{suffix}".encode("ascii")).hexdigest()

    async def _execute(self, request: SolveRequest) -> SolveOutcome:
        """Run one request on the worker pool (sharded for C-Nash batches).

        When a deadline cancels this coroutine mid-``gather``, the
        cancellation propagates through the ``run_in_executor`` futures
        into the underlying pool futures, so shards that have not
        started yet are dropped rather than executed; only shards
        already running on a worker complete (and are discarded).
        """
        if request.policy == "cnash" and not cnash_is_builtin():
            # A substituted "cnash" backend must actually be the one that
            # answers; run it through the generic registry path below
            # (shared-registry executors only — same rule as portfolio).
            if self.executor_kind == "process":
                raise RuntimeError(
                    "a replaced 'cnash' backend cannot be served by the process "
                    "executor: worker processes may resolve the name to the "
                    "built-in solver instead; use executor='thread' or 'inline'"
                )
        elif request.policy == "cnash":
            payloads = shard_payloads(request, self.shard_size)
            self._attach_fault_plan(payloads)
            shard_dicts = await asyncio.gather(
                *(
                    self._run_worker(solve_shard_payload, payload)
                    for payload in payloads
                )
            )
            self._count("shards_executed", len(payloads))
            merged = SolverBatchResult.merge(
                [SolverBatchResult.from_dict(shard) for shard in shard_dicts]
            )
            return outcome_from_batch(request, merged, backend="cnash", shards=len(payloads))
        if request.policy == "portfolio":
            order = portfolio_order()
            if order is not None:
                return await self._execute_portfolio(request, order)
            # Custom (non-chain) portfolio replacement: its own solve()
            # runs on a worker through the generic path below.  That is
            # only sound when the worker shares this process's registry
            # — a worker *process* may re-import the built-in portfolio
            # under the same name and silently answer with the wrong
            # semantics, so refuse rather than guess.
            if self.executor_kind == "process":
                raise RuntimeError(
                    "a custom (non-chain) 'portfolio' backend cannot be served "
                    "by the process executor: worker processes may resolve the "
                    "name to the built-in portfolio chain instead; use "
                    "executor='thread' or 'inline'"
                )
        payload = request.to_dict()
        self._attach_fault_plan([payload])
        outcome_dict = await self._run_worker(execute_request_payload, payload)
        self._count("shards_executed")
        return SolveOutcome.from_dict(outcome_dict)

    async def _execute_portfolio(
        self, request: SolveRequest, order: "tuple[str, ...]"
    ) -> SolveOutcome:
        """Portfolio policy with scheduler-level member routing.

        Same selection semantics as the registered
        :class:`~repro.backends.PortfolioBackend` (shared via
        :func:`~repro.service.portfolio.adopt_portfolio_attempt`) — try
        the members in :func:`~repro.service.portfolio.portfolio_order`,
        keep the first verified answer — but each member goes through
        :meth:`_execute`, so the C-Nash fallback is *sharded* across the
        worker pool instead of running its whole batch inside one
        worker.  The member order is data on the registered portfolio
        backend: re-registering it with a different order re-routes this
        path too, with no scheduler change.
        """
        start = time.perf_counter()
        last: Optional[SolveOutcome] = None
        for member in order:
            attempt = await self._execute(member_request(request, member))
            last = attempt
            if adopt_portfolio_attempt(request, attempt):
                break
        assert last is not None  # order is non-empty
        last.wall_clock_seconds = time.perf_counter() - start
        return last

    # ------------------------------------------------------------------
    # Resilience: supervised execution, retry, escalation, quarantine
    # ------------------------------------------------------------------
    async def _run_worker(self, fn: Callable, payload: Dict[str, Any]) -> Any:
        """One worker-pool call under supervision.

        The supervisor converts a broken pool into
        :class:`~repro.service.resilience.WorkerDeath` and a missed
        ``worker_timeout_s`` heartbeat into
        :class:`~repro.service.resilience.WorkerHang` — rebuilding the
        pool in both cases so the retry lands on healthy workers.
        """
        assert self._supervisor is not None
        return await self._supervisor.run(fn, payload, timeout_s=self.worker_timeout_s)

    def _attach_fault_plan(self, payloads: List[Dict[str, Any]]) -> None:
        """Ship the chaos fault plan (if any) with worker payloads."""
        if self.fault_plan is None:
            return
        plan = self.fault_plan.to_dict()
        pid = os.getpid()
        for payload in payloads:
            payload["fault_plan"] = plan
            payload["parent_pid"] = pid

    def _effective_request(self, record: JobRecord) -> SolveRequest:
        """The request to actually execute for the record's current attempt.

        Attempt 1 — and every *infrastructure-fault* retry — is the
        original request, so retried results are bit-identical to a
        fault-free run.  Solver-miss escalation rungs derive a fresh
        (but reproducible) seed via :func:`retry_seed`; from the second
        rung the policy additionally walks the registry portfolio order
        past the original backend, so a stochastic miss gets both new
        randomness and stronger solvers.
        """
        stage = record.escalation_stage
        if stage <= 0:
            return record.request
        request = record.request
        seed = request.seed if request.seed is None else retry_seed(request.seed, record.attempts)
        policy = request.policy
        if stage >= 2:
            order = portfolio_order() or ()
            ladder = [name for name in order if name != request.policy]
            if ladder:
                policy = ladder[min(stage - 2, len(ladder) - 1)]
        return dataclasses.replace(request, seed=seed, policy=policy)

    def _relabel_outcome(self, record: JobRecord, outcome: SolveOutcome) -> None:
        """Re-label an escalated attempt as the original request's outcome.

        Mirrors :func:`~repro.service.portfolio.adopt_portfolio_attempt`:
        the client asked for ``record.request`` — the outcome carries
        that identity, while ``outcome.backend`` keeps naming the solver
        that actually answered.
        """
        request = record.request
        if outcome.fingerprint != request.fingerprint():
            outcome.fingerprint = request.fingerprint()
            outcome.policy = request.policy

    def _handle_execution_failure(
        self,
        record: JobRecord,
        exc: BaseException,
        stage: str,
        batch_id: Optional[str] = None,
    ) -> bool:
        """Classify a live execution exception and apply the retry policy."""
        return self._apply_failure_policy(
            record,
            classify_failure(exc),
            f"{type(exc).__name__}: {exc}",
            stage,
            batch_id=batch_id,
        )

    def _apply_failure_policy(
        self,
        record: JobRecord,
        fault_class: str,
        error_text: str,
        stage: str,
        batch_id: Optional[str] = None,
        count_breaker: bool = True,
    ) -> bool:
        """Route one classified failure: quarantine, retry, or decline.

        Returns ``True`` when the failure was fully handled here (a
        retry was scheduled or the job was quarantined); the caller must
        not mark the job ``FAILED`` in that case.  Permanent job errors
        never touch the breaker — a bad spec says nothing about backend
        health.
        """
        policy = record.request.policy
        if count_breaker and fault_class in (WORKER_DEATH, TRANSIENT):
            self._breakers.on_failure(policy)
        if fault_class == WORKER_DEATH:
            record.worker_deaths += 1
            if record.worker_deaths >= self.retry_policy.quarantine_after:
                self._count("quarantined")
                self._log_job_failure(
                    record, error_text, stage=f"{stage} (quarantined)", batch_id=batch_id
                )
                self._finish(
                    record,
                    JobStatus.QUARANTINED,
                    error=(
                        f"quarantined after {record.worker_deaths} worker deaths "
                        f"(poison pill): {error_text}"
                    ),
                )
                return True
        if not self.retry_policy.should_retry(fault_class, record.attempts):
            return False
        self._schedule_retry(record, fault_class, error_text, stage, batch_id=batch_id)
        return True

    def _schedule_retry(
        self,
        record: JobRecord,
        fault_class: str,
        error_text: str,
        stage: str,
        batch_id: Optional[str] = None,
    ) -> None:
        """Re-enqueue a failed job after its deterministic backoff."""
        attempt = record.attempts
        delay = self.retry_policy.backoff_s(fault_class, attempt, record.request.fingerprint())
        record.attempts = attempt + 1
        if record.status == JobStatus.RUNNING:
            self._running_jobs -= 1
        record.status = JobStatus.PENDING
        record.started_at = None
        record.error = None
        if fault_class == WORKER_DEATH:
            # Crash retries dispatch solo: if the job kills its worker
            # again, it is uniquely identified as the poison pill instead
            # of dragging innocent batch companions toward quarantine.
            record.no_batch = True
        elif fault_class == SOLVER_MISS:
            record.escalation_stage += 1
            record.no_batch = True  # escalated attempts differ from the batch key
        self._batch_keys.pop(record.job_id, None)
        if record.timeline is not None:
            record.timeline.cut(
                "retry", fault_class=fault_class, attempt=attempt,
                backoff_ms=round(delay * 1000.0, 3),
            )
        self.counters["retried"] += 1
        self._metrics["retries"].labels(fault_class=fault_class).inc()
        logger.warning(
            "retrying job after %s failure", fault_class,
            extra={
                "job": record.request.fingerprint(),
                "job_id": record.job_id,
                "batch_id": batch_id,
                "stage": stage,
                "attempt": attempt,
                "next_attempt": record.attempts,
                "backoff_s": delay,
                "escalation_stage": record.escalation_stage,
                "err": error_text,
            },
        )
        task = asyncio.get_running_loop().create_task(self._requeue_after(record, delay))
        self._retry_tasks.add(task)
        task.add_done_callback(self._retry_tasks.discard)

    async def _requeue_after(self, record: JobRecord, delay: float) -> None:
        """Sleep out the backoff, then put the job back on the queue."""
        if delay > 0:
            await asyncio.sleep(delay)
        if record.done or self._closed:
            return
        await self._queue.put(
            (record.request.priority, next(self._sequence), record.job_id)
        )

    def _maybe_escalate_solver_miss(self, record: JobRecord, outcome: SolveOutcome) -> bool:
        """Escalate a completed-but-unverified solve when policy allows.

        C-Nash is a stochastic annealer with per-run success rate below
        one; when escalation is enabled (it is off by default — it can
        change which bytes a request returns) an outcome with no
        verified ε-equilibrium re-runs with a fresh derived seed and,
        past the first rung, through the registry portfolio order.
        ``"exact"`` is deterministic and ``"portfolio"`` escalates
        internally, so neither re-enters here.
        """
        if not self.retry_policy.escalation_enabled():
            return False
        request = record.request
        if request.policy in ("exact", "portfolio"):
            return False
        if has_verified_equilibrium(request, outcome):
            return False
        return self._apply_failure_policy(
            record, SOLVER_MISS,
            "no verified equilibrium (solver miss)", stage="verification",
        )

    def _log_job_failure(
        self,
        record: JobRecord,
        error: Any,
        stage: str,
        batch_id: Optional[str] = None,
    ) -> None:
        """Correlated failure log: job fingerprint + span id + stage."""
        logger.warning(
            "job failed in %s", stage,
            extra={
                "job": record.request.fingerprint(),
                "job_id": record.job_id,
                "batch_id": batch_id,
                "span_id": None if record.timeline is None else record.timeline.span_id,
                "policy": record.request.policy,
                "err": str(error),
            },
        )

    def _finish(self, record: JobRecord, status: str, error: Optional[str] = None) -> None:
        if record.status == JobStatus.RUNNING:
            self._running_jobs -= 1
        record.status = status
        record.error = error
        record.finished_at = time.time()
        latency_key = (record.request.policy, status)
        latency = self._latency_children.get(latency_key)
        if latency is None:
            latency = self._latency_children[latency_key] = self._metrics[
                "latency"
            ].labels(policy=record.request.policy, status=status)
        latency.observe(record.elapsed())
        if (
            status == JobStatus.DONE
            and record.outcome is not None
            and not record.cache_hit
        ):
            # Attempt count is execution metadata (like the trace): it is
            # stamped after cache writes, so cached bytes stay identical
            # whether or not the computing run needed retries.
            record.outcome.attempts = record.attempts
        timeline = record.timeline
        if (
            timeline is not None
            and status == JobStatus.DONE
            and record.outcome is not None
            and not record.cache_hit
        ):
            # Close the timeline so the contiguous top-level phases span
            # submit-to-finish exactly, then publish it on the outcome.
            # Cache hits and coalesced followers are skipped: their
            # outcome object is shared (the leader's) or deserialised
            # from a cache entry that carries no trace.
            timeline.cut("settle", status=status)
            record.outcome.trace = timeline.to_wire()
        # Spec-backed requests may have materialised their dense game in
        # this process (outcome merging, verification); the record stays
        # in the retained job table, so drop the matrices now — a cold
        # thousand-game sweep must never pin every dense game at once.
        record.request.release_materialization()
        self._batch_keys.pop(record.job_id, None)
        if record.request.cacheable:
            key = self._cache_key(record.request)
            if self._inflight.get(key) is record:
                del self._inflight[key]
        event = self._events.get(record.job_id)
        if event is not None:
            event.set()
        # Bound the job table: evict the oldest finished records beyond
        # the limit so a long-running server's memory stays flat.
        self._finished_order.append(record.job_id)
        while len(self._finished_order) > self.finished_job_limit:
            evicted = self._finished_order.popleft()
            self._jobs.pop(evicted, None)
            self._events.pop(evicted, None)
