"""Content-addressed result cache: in-memory LRU plus optional disk tier.

Keys are :meth:`repro.service.jobs.SolveRequest.fingerprint` digests and
values are :class:`~repro.service.jobs.SolveOutcome` JSON dicts, so a
cache entry is exactly what the wire protocol and the worker pool
already exchange.  The memory tier is a strict LRU bounded by
``capacity``; the optional disk tier (one ``<fingerprint>.json`` file
per entry) survives restarts — a disk hit is promoted back into memory
(and its file's mtime refreshed, so disk recency tracks access, not
write time).  The disk tier is unbounded by default; set
``max_disk_bytes`` to bound it, evicting oldest-mtime entries first
once the tier's total size passes the budget.

All operations are thread-safe: a lock guards the memory tier's
bookkeeping, while disk I/O runs lock-free (atomic rename writes of
content-addressed entries, so concurrent writers cannot corrupt an
entry and readers see a complete file or none).  The scheduler offloads
disk-tier lookups and stores to worker threads so large JSON I/O never
blocks its event loop.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.telemetry import family_cache

_FINGERPRINT_CHARS = set("0123456789abcdef")


@family_cache
def _metrics(reg):
    return (
        reg.counter("repro_cache_hits_total",
                    "Result-cache lookups served from memory or disk"),
        reg.counter("repro_cache_misses_total",
                    "Result-cache lookups that found nothing"),
        reg.counter("repro_cache_evictions_total",
                    "Result-cache entries dropped by LRU capacity"),
        reg.counter("repro_cache_stores_total",
                    "Result-cache entries written"),
        reg.counter("repro_cache_disk_hits_total",
                    "Result-cache hits promoted from the disk tier"),
        reg.counter("repro_cache_disk_evictions_total",
                    "Result-cache disk entries dropped by the max-bytes budget"),
    )


def _check_fingerprint(fingerprint: str) -> str:
    """Validate a cache key (hex digest) before using it as a file name."""
    if not fingerprint or not set(fingerprint) <= _FINGERPRINT_CHARS:
        raise ValueError(f"invalid fingerprint {fingerprint!r}")
    return fingerprint


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache instance.

    .. deprecated:: PR 7
        These per-instance counters (and the ``stats`` dict shapes built
        from them) are kept as aliases for one release; the canonical
        counters are the ``repro_cache_*_total`` telemetry metrics,
        aggregated across every cache instance in the process.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_hits: int = 0
    disk_evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation for stats endpoints."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "disk_evictions": self.disk_evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """LRU cache of solve outcomes keyed by request fingerprints.

    Parameters
    ----------
    capacity:
        Maximum number of entries held in memory (least recently used
        entries are evicted first).  ``0`` disables the memory tier.
    directory:
        Optional directory for the persistent tier; created on first
        store.
    max_disk_bytes:
        Optional byte budget for the disk tier.  ``None`` (default)
        keeps it unbounded; otherwise, after every store the
        oldest-mtime entries are unlinked until the tier's total size
        fits the budget (disk hits refresh mtime, so this is an LRU by
        access).  A budget smaller than one entry still admits the
        freshly written entry — the bound is best-effort, enforced
        after the write.
    """

    capacity: int = 256
    directory: Optional[Path] = None
    max_disk_bytes: Optional[int] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {self.capacity}")
        if self.max_disk_bytes is not None and self.max_disk_bytes < 0:
            raise ValueError(
                f"max_disk_bytes must be non-negative, got {self.max_disk_bytes}")
        if self.directory is not None:
            self.directory = Path(self.directory)
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        """Membership in either tier; does not touch stats or recency."""
        _check_fingerprint(fingerprint)
        with self._lock:
            if fingerprint in self._entries:
                return True
        return self._disk_path(fingerprint) is not None

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Return the cached outcome dict for ``fingerprint``, or ``None``.

        Memory hits refresh recency; disk hits are promoted into memory.
        """
        _check_fingerprint(fingerprint)
        hits, misses, _, _, disk_hits, _ = _metrics()
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                hits.inc()
                return entry
        entry = self._read_disk(fingerprint)
        with self._lock:
            if entry is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                hits.inc()
                disk_hits.inc()
                self._insert(fingerprint, entry)
                return entry
            self.stats.misses += 1
            misses.inc()
            return None

    def put(self, fingerprint: str, outcome: Dict[str, Any]) -> None:
        """Store an outcome dict under ``fingerprint`` in both tiers."""
        _check_fingerprint(fingerprint)
        _metrics()[3].inc()
        with self._lock:
            self._insert(fingerprint, outcome)
            self.stats.stores += 1
        if self.directory is not None:
            # No lock for the disk write: entries are content-addressed
            # (every writer of a key writes the same value) and the
            # tmp-then-replace sequence is atomic, so concurrent writers
            # cannot corrupt an entry; readers see the old or new file.
            payload = json.dumps(outcome)
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / f"{fingerprint}.json"
            tmp = path.with_suffix(f".{uuid.uuid4().hex}.tmp")
            tmp.write_text(payload, encoding="utf-8")
            tmp.replace(path)
            self._enforce_disk_budget()

    def put_many(self, entries: "list[tuple[str, Dict[str, Any]]]") -> None:
        """Store several ``(fingerprint, outcome)`` pairs in one call.

        The batched-dispatch path completes a whole coalesced batch of
        jobs at once; storing their outcomes through one call costs one
        lock acquisition for the memory tier and — crucially for the
        scheduler, which offloads disk I/O to a worker thread — one
        executor hop instead of one per job.
        """
        if not entries:
            return
        for fingerprint, _ in entries:
            _check_fingerprint(fingerprint)
        _metrics()[3].inc(len(entries))
        with self._lock:
            for fingerprint, outcome in entries:
                self._insert(fingerprint, outcome)
                self.stats.stores += 1
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            for fingerprint, outcome in entries:
                payload = json.dumps(outcome)
                path = self.directory / f"{fingerprint}.json"
                tmp = path.with_suffix(f".{uuid.uuid4().hex}.tmp")
                tmp.write_text(payload, encoding="utf-8")
                tmp.replace(path)
            self._enforce_disk_budget()

    def clear(self) -> None:
        """Drop the memory tier (disk entries are left in place)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Internals (callers hold the lock)
    # ------------------------------------------------------------------
    def _insert(self, fingerprint: str, outcome: Dict[str, Any]) -> None:
        if self.capacity == 0:
            return
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
        self._entries[fingerprint] = outcome
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            _metrics()[2].inc()

    def _disk_path(self, fingerprint: str) -> Optional[Path]:
        if self.directory is None:
            return None
        path = self.directory / f"{fingerprint}.json"
        return path if path.is_file() else None

    def _read_disk(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        # Lock-free: writes are atomic renames, so a read sees a complete
        # entry or none at all.
        path = self._disk_path(fingerprint)
        if path is None:
            return None
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if self.max_disk_bytes is not None:
            try:
                # Refresh mtime so the budget enforcer's oldest-first
                # ordering is an LRU by access rather than by write.
                os.utime(path)
            except OSError:  # pragma: no cover - raced with eviction
                pass
        return entry

    def _enforce_disk_budget(self) -> None:
        """Evict oldest-mtime disk entries until the tier fits the budget.

        Best-effort and lock-free like the writes: a concurrently
        unlinked file is simply skipped, and two enforcers racing will
        at worst both observe an over-budget tier and delete disjoint
        files (unlink is idempotent via ``missing_ok``).
        """
        budget = self.max_disk_bytes
        if budget is None or self.directory is None:
            return
        entries = []
        total = 0
        for path in self.directory.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced with eviction
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= budget:
            return
        entries.sort(key=lambda item: item[0])
        # Never evict the newest entry: a budget smaller than one entry
        # must still admit the write that triggered enforcement.
        for _, size, path in entries[:-1]:
            if total <= budget:
                break
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - raced with eviction
                continue
            total -= size
            with self._lock:
                self.stats.disk_evictions += 1
            _metrics()[5].inc()
