"""Equilibrium-as-a-service: scheduler, cache, portfolio and transports.

This package turns the in-process solvers into a serving layer:

* :mod:`repro.service.jobs` — :class:`SolveRequest` / :class:`JobRecord`
  with deterministic content-addressed fingerprints;
* :mod:`repro.service.cache` — LRU + optional on-disk result cache keyed
  by those fingerprints;
* :mod:`repro.service.scheduler` — asyncio priority queue with a
  process-pool worker backend that shards ``num_runs=N`` batches into
  per-worker sub-batches and merges them deterministically;
* :mod:`repro.service.portfolio` — dispatch of request policies through
  the pluggable backend registry (:mod:`repro.backends`): any backend
  registered with ``register_backend()`` is servable here with zero
  changes to this package;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  dependency-free JSON-over-TCP front end plus async, sync and
  in-process clients.

Quickstart::

    from repro import battle_of_the_sexes, CNashConfig
    from repro.service import InProcessClient, SolveRequest

    request = SolveRequest(game=battle_of_the_sexes(), policy="portfolio",
                           num_runs=200, seed=0, config=CNashConfig())
    with InProcessClient(max_workers=4) as client:
        outcome = client.solve(request)
        print(outcome.backend, outcome.num_equilibria)

or over TCP: ``python -m repro.service --port 8765`` and then
:class:`~repro.service.client.ServiceClient` / ``SyncServiceClient``.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.client import InProcessClient, ServiceClient, ServiceError, SyncServiceClient
from repro.service.jobs import (
    JobRecord,
    JobStatus,
    SolveOutcome,
    SolveRequest,
    config_from_dict,
    config_to_dict,
    game_from_dict,
    game_to_dict,
)
from repro.service.portfolio import (
    execute_request,
    portfolio_order,
    shard_payloads,
    solve_shard_payload,
)
from repro.service.scheduler import DEFAULT_SHARD_SIZE, SolveScheduler
from repro.service.server import NashServer, serve

__all__ = [
    "CacheStats",
    "ResultCache",
    "InProcessClient",
    "ServiceClient",
    "SyncServiceClient",
    "ServiceError",
    "JobRecord",
    "JobStatus",
    "SolveOutcome",
    "SolveRequest",
    "config_to_dict",
    "config_from_dict",
    "game_to_dict",
    "game_from_dict",
    "execute_request",
    "portfolio_order",
    "shard_payloads",
    "solve_shard_payload",
    "SolveScheduler",
    "DEFAULT_SHARD_SIZE",
    "NashServer",
    "serve",
]
