"""Clients for the solve service: async TCP, sync TCP, and in-process.

* :class:`ServiceClient` — asyncio client speaking the JSON-lines
  protocol of :mod:`repro.service.server` over one persistent
  connection.
* :class:`SyncServiceClient` — blocking wrapper for scripts and the
  experiment runner; one connection per call, no event-loop management
  required of the caller.
* :class:`InProcessClient` — the same blocking API served by a private
  :class:`~repro.service.scheduler.SolveScheduler` on a background
  event-loop thread, no sockets involved.  This is what
  ``cnash-experiments --service`` and :func:`repro.api.sweep` use.

All clients take :class:`~repro.service.jobs.SolveRequest` objects,
which may be spec-backed (``game`` is a
:class:`~repro.games.spec.GameSpec`): such requests travel as ~100-byte
``game_spec`` wire payloads and the dense game is materialised
server-side, which is what keeps thousand-game ensemble sweeps cheap to
ship.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.service.batching import DEFAULT_MAX_BATCH_JOBS, DEFAULT_MAX_BATCH_LINGER_MS
from repro.service.cache import ResultCache
from repro.service.jobs import SolveOutcome, SolveRequest
from repro.service.resilience import WIRE_ERRORS, ServiceUnavailable
from repro.service.scheduler import DEFAULT_SHARD_SIZE, SolveScheduler
from repro.service.server import MAX_LINE_BYTES


class ServiceError(RuntimeError):
    """An error response from the service (untyped / legacy)."""


@dataclass(frozen=True)
class ReconnectPolicy:
    """Bounded reconnect-with-backoff for the TCP clients.

    ``max_attempts`` counts total connection attempts; exhaustion
    surfaces as the typed
    :class:`~repro.service.resilience.ServiceUnavailable` instead of a
    raw ``ConnectionError`` traceback.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.1
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def backoff_s(self, attempt: int) -> float:
        """Delay before attempt ``attempt + 1`` (attempt is 1-based)."""
        return min(self.base_backoff_s * (2 ** max(0, attempt - 1)),
                   self.max_backoff_s)


def _raise_from_response(response: Dict[str, Any]) -> None:
    """Re-raise a ``{"ok": false}`` response as its typed exception.

    Responses carrying an ``error_type`` wire tag (load shedding, open
    breakers, …) become the matching
    :class:`~repro.service.resilience.ResilienceError` subclass with its
    ``retry_after_s`` hint restored; everything else stays the legacy
    :class:`ServiceError`.
    """
    message = response.get("error", "unknown service error")
    error_cls = WIRE_ERRORS.get(response.get("error_type"))
    if error_cls is None:
        raise ServiceError(message)
    exc = error_cls(message)
    retry_after = response.get("retry_after_s")
    if retry_after is not None:
        exc.retry_after_s = float(retry_after)
    raise exc


class ServiceClient:
    """Async client over one persistent TCP connection."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 8765,
        reconnect: Optional[ReconnectPolicy] = None,
    ) -> "ServiceClient":
        """Open a connection to a running server.

        With a :class:`ReconnectPolicy`, failed connection attempts are
        retried with bounded backoff; exhaustion (and a policy-less
        failure) raises the typed :class:`ServiceUnavailable` instead of
        leaking ``ConnectionRefusedError``.
        """
        policy = reconnect or ReconnectPolicy(max_attempts=1)
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                reader, writer = await asyncio.open_connection(
                    host, port, limit=MAX_LINE_BYTES
                )
                return cls(reader, writer)
            except (ConnectionError, OSError) as exc:
                last_error = exc
                if attempt < policy.max_attempts:
                    await asyncio.sleep(policy.backoff_s(attempt))
        raise ServiceUnavailable(
            f"cannot connect to {host}:{port} after {policy.max_attempts} "
            f"attempt(s): {last_error}"
        ) from last_error

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one protocol message and return the decoded response.

        ``{"ok": false}`` responses raise their typed
        :class:`~repro.service.resilience.ResilienceError` when the
        server tagged them (``Overloaded``, ``CircuitOpen``, …), else
        the legacy :class:`ServiceError`; transport-level drops raise
        :class:`ServiceUnavailable`.
        """
        try:
            self._writer.write(json.dumps(message).encode("utf-8") + b"\n")
            await self._writer.drain()
            line = await self._reader.readline()
        except (ConnectionError, OSError) as exc:
            raise ServiceUnavailable(f"connection lost mid-call: {exc}") from exc
        if not line:
            raise ServiceUnavailable("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            _raise_from_response(response)
        return response

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def ping(self) -> Dict[str, Any]:
        """Liveness check."""
        return await self.call({"op": "ping"})

    async def solve(self, request: SolveRequest, priority: Optional[int] = None) -> SolveOutcome:
        """Submit a request and wait for its outcome."""
        message: Dict[str, Any] = {"op": "solve", "request": request.to_dict()}
        if priority is not None:
            message["priority"] = priority
        response = await self.call(message)
        return SolveOutcome.from_dict(response["outcome"])

    async def submit(self, request: SolveRequest, priority: Optional[int] = None) -> str:
        """Submit a request; returns the job id without waiting."""
        message: Dict[str, Any] = {"op": "submit", "request": request.to_dict()}
        if priority is not None:
            message["priority"] = priority
        response = await self.call(message)
        return response["job_id"]

    async def status(self, job_id: str) -> Dict[str, Any]:
        """The job record of a submitted job."""
        return (await self.call({"op": "status", "job_id": job_id}))["job"]

    async def result(self, job_id: str) -> SolveOutcome:
        """Wait for a submitted job's outcome."""
        response = await self.call({"op": "result", "job_id": job_id})
        return SolveOutcome.from_dict(response["outcome"])

    async def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; ``False`` when it already started."""
        return (await self.call({"op": "cancel", "job_id": job_id}))["cancelled"]

    async def stats(self) -> Dict[str, Any]:
        """Scheduler and cache statistics (deprecated; see :meth:`telemetry`)."""
        return (await self.call({"op": "stats"}))["stats"]

    async def telemetry(self) -> Dict[str, Any]:
        """Unified metrics snapshot (``{"families": {...}}``)."""
        return (await self.call({"op": "telemetry"}))["telemetry"]

    async def shutdown(self) -> None:
        """Ask the server to shut down."""
        await self.call({"op": "shutdown"})


class SyncServiceClient:
    """Blocking TCP client: one connection and event loop per call.

    Convenient for scripts; for high request rates use
    :class:`ServiceClient` on a long-lived loop instead.  Connection
    failures retry per ``reconnect`` (a :class:`ReconnectPolicy` or an
    attempt count) and surface as the typed
    :class:`~repro.service.resilience.ServiceUnavailable`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        reconnect: Union[ReconnectPolicy, int, None] = None,
    ) -> None:
        self.host = host
        self.port = port
        if isinstance(reconnect, int):
            reconnect = ReconnectPolicy(max_attempts=reconnect)
        self.reconnect = reconnect

    def _run(self, op_coro_factory):
        async def body():
            client = await ServiceClient.connect(
                self.host, self.port, reconnect=self.reconnect
            )
            try:
                return await op_coro_factory(client)
            finally:
                await client.close()

        return asyncio.run(body())

    def ping(self) -> Dict[str, Any]:
        """Liveness check."""
        return self._run(lambda client: client.ping())

    def solve(self, request: SolveRequest, priority: Optional[int] = None) -> SolveOutcome:
        """Submit a request and block until its outcome arrives."""
        return self._run(lambda client: client.solve(request, priority=priority))

    def stats(self) -> Dict[str, Any]:
        """Scheduler and cache statistics (deprecated; see :meth:`telemetry`)."""
        return self._run(lambda client: client.stats())

    def telemetry(self) -> Dict[str, Any]:
        """Unified metrics snapshot (``{"families": {...}}``)."""
        return self._run(lambda client: client.telemetry())

    def shutdown(self) -> None:
        """Ask the server to shut down."""
        self._run(lambda client: client.shutdown())


class InProcessClient:
    """Blocking client backed by a private scheduler, no sockets.

    Spins up an event loop on a daemon thread and runs a
    :class:`SolveScheduler` there, so synchronous code (scripts, the
    experiment runner) can use the full scheduler/cache/sharding stack
    with plain method calls.  Close it (or use it as a context manager)
    to release the worker pool.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        executor: str = "process",
        cache: Optional[ResultCache] = None,
        max_batch_jobs: int = DEFAULT_MAX_BATCH_JOBS,
        max_batch_linger_ms: float = DEFAULT_MAX_BATCH_LINGER_MS,
        **scheduler_kwargs: Any,
    ) -> None:
        # Validate the configuration (the scheduler constructor raises on
        # bad executor kinds / sizes) before starting the loop thread, so
        # a misconfiguration cannot leak a running daemon loop.
        # ``scheduler_kwargs`` passes the resilience knobs straight
        # through (retry_policy, max_queue_depth, worker_timeout_s,
        # fault_plan, ...).
        self._scheduler = SolveScheduler(
            max_workers=max_workers,
            shard_size=shard_size,
            executor=executor,
            cache=cache,
            max_batch_jobs=max_batch_jobs,
            max_batch_linger_ms=max_batch_linger_ms,
            **scheduler_kwargs,
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        try:
            self._call(self._scheduler.start())
        except BaseException:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)
            self._loop.close()
            raise

    def _call(self, coro, timeout: Optional[float] = None):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def solve(
        self,
        request: SolveRequest,
        priority: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> SolveOutcome:
        """Submit a request and block until its outcome arrives."""
        return self._call(self._scheduler.solve(request, priority=priority), timeout)

    def submit(self, request: SolveRequest, priority: Optional[int] = None) -> str:
        """Submit without waiting; returns the job id."""
        record = self._call(self._scheduler.submit(request, priority=priority))
        return record.job_id

    def submit_many(
        self, requests: Sequence[SolveRequest], priority: Optional[int] = None
    ) -> List[str]:
        """Submit many requests in one loop-thread hop; returns job ids in order.

        Enqueueing a whole sweep at once (rather than one
        :meth:`submit` round-trip per request) is what lets the
        scheduler's batch coalescing see companions in the queue even
        with ``max_batch_linger_ms=0``.
        """

        async def body() -> List[str]:
            records = [
                await self._scheduler.submit(request, priority=priority)
                for request in requests
            ]
            return [record.job_id for record in records]

        return self._call(body())

    def result(self, job_id: str, timeout: Optional[float] = None) -> SolveOutcome:
        """Block until a submitted job's outcome arrives."""
        return self._call(self._scheduler.wait(job_id), timeout)

    def results(
        self,
        job_ids: Sequence[str],
        timeout: Optional[float] = None,
        return_exceptions: bool = False,
    ) -> List[Any]:
        """Block until every listed job's outcome arrives, in order.

        With ``return_exceptions=True``, per-job failures (``FAILED`` /
        ``QUARANTINED`` records, shed submissions) come back as the
        exception object in that job's slot instead of aborting the
        whole wait — the sweep-with-failures path.
        """

        async def body() -> List[Any]:
            return list(
                await asyncio.gather(
                    *(self._scheduler.wait(job_id) for job_id in job_ids),
                    return_exceptions=return_exceptions,
                )
            )

        return self._call(body(), timeout)

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job record of a submitted job."""
        return self._on_loop(lambda: self._scheduler.job(job_id).to_dict())

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job."""
        return self._on_loop(lambda: self._scheduler.cancel(job_id))

    def stats(self) -> Dict[str, Any]:
        """Scheduler and cache statistics (deprecated; see :meth:`telemetry`)."""
        return self._on_loop(self._scheduler.stats)

    def telemetry(self) -> Dict[str, Any]:
        """Unified metrics snapshot (``{"families": {...}}``)."""
        return self._on_loop(self._scheduler.telemetry)

    def _on_loop(self, fn):
        """Run a synchronous scheduler call on the scheduler's own loop thread.

        Scheduler state (job table, asyncio events) is only touched from
        its event loop; ``cancel`` in particular sets an ``asyncio.Event``,
        which is not thread-safe to do from the caller's thread.
        """

        async def body():
            return fn()

        return self._call(body())

    def close(self) -> None:
        """Shut the scheduler down and stop the background loop."""
        if self._loop.is_closed():
            return
        try:
            self._call(self._scheduler.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)
            self._loop.close()

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
