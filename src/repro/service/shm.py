"""Shared-memory payoff transfer for dense games on process executors.

A batched dispatch to a worker *process* normally pickles every job's
payload; for dense-game requests that means re-encoding the payoff
matrices as nested float lists (``game_to_dict``) and pickling ~100 KB
per 64x64 job — easily more expensive than the solve at small run
budgets.  This module moves the matrix *bytes* through
:mod:`multiprocessing.shared_memory` instead: the parent copies both
payoff matrices into one named segment per game and ships a ~100-byte
descriptor; the worker attaches, copies the arrays out (the solver owns
plain arrays — the segment's lifetime stays with the parent) and
detaches.

Lifecycle contract: the *parent* creates and unlinks every segment
(after the batch future resolves, success or failure); workers only ever
attach and close.  Attaching registers the segment with the worker's
``resource_tracker`` on POSIX, which would try to unlink it again at
worker shutdown and warn about a missing segment — :func:`read_shared_game`
de-registers after closing, the documented workaround for
reader-side attachments.

Spec-backed requests never need this path (their wire form is already
~100 bytes); the scheduler only shares dense games at or above
:data:`SHM_MIN_CELLS` payoff cells, where the descriptor saving beats
the segment setup cost.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.games.bimatrix import BimatrixGame
from repro.service.resilience.faults import fault_point
from repro.telemetry import family_cache, get_logger

try:  # pragma: no cover - stdlib on every supported platform
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - exotic builds only
    shared_memory = None  # type: ignore[assignment]

#: Smallest dense game (payoff cells) worth a shared-memory segment.
SHM_MIN_CELLS = 1024

logger = get_logger("repro.service.shm")


@family_cache
def _metrics(reg):
    return (
        reg.counter("repro_shm_segments_total",
                    "Shared-memory segments created for payoff transfer"),
        reg.counter("repro_shm_bytes_total",
                    "Payoff bytes moved through shared-memory segments"),
        reg.counter("repro_shm_release_errors_total",
                    "Segment close/unlink attempts that failed"),
    )


def shm_available() -> bool:
    """Whether shared-memory transfer is usable on this platform."""
    return shared_memory is not None


def share_game(game: BimatrixGame) -> Tuple[Dict[str, Any], "shared_memory.SharedMemory"]:
    """Copy a game's payoff matrices into a fresh shared segment.

    Returns the JSON-safe descriptor to ship to the worker and the
    segment handle the parent must ``close()`` + ``unlink()`` once the
    batch resolves.
    """
    if shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    row = np.ascontiguousarray(game.payoff_row, dtype=np.float64)
    col = np.ascontiguousarray(game.payoff_col, dtype=np.float64)
    segment = shared_memory.SharedMemory(create=True, size=row.nbytes + col.nbytes)
    stacked = np.ndarray((2,) + row.shape, dtype=np.float64, buffer=segment.buf)
    stacked[0] = row
    stacked[1] = col
    segments_total, bytes_total, _ = _metrics()
    segments_total.inc()
    bytes_total.inc(row.nbytes + col.nbytes)
    descriptor = {
        "name": segment.name,
        "shape": [int(dim) for dim in row.shape],
        "game_name": game.name,
        "tracker_pid": _tracker_pid(),
    }
    return descriptor, segment


def read_shared_game(descriptor: Dict[str, Any]) -> BimatrixGame:
    """Rebuild a dense game from a :func:`share_game` descriptor.

    The returned game owns private copies of the matrices, so the parent
    is free to unlink the segment the moment the batch future resolves.
    """
    if shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    # Chaos hook: simulates the attach race where the parent unlinked
    # the segment before the worker attached (classified transient).
    fault_point("shm", key=str(descriptor["name"]))
    segment = shared_memory.SharedMemory(name=descriptor["name"])
    try:
        shape = tuple(int(dim) for dim in descriptor["shape"])
        stacked = np.ndarray((2,) + shape, dtype=np.float64, buffer=segment.buf)
        payoff_row = np.array(stacked[0])
        payoff_col = np.array(stacked[1])
    finally:
        segment.close()
        _unregister_attachment(segment, descriptor.get("tracker_pid"))
    return BimatrixGame(payoff_row, payoff_col, name=str(descriptor["game_name"]))


def release_segments(segments: List["shared_memory.SharedMemory"]) -> None:
    """Close and unlink parent-owned segments (idempotent, best-effort).

    A failed release cannot fail the solve, but it is no longer silent:
    the segment name and error are logged (and counted) so leaked
    segments can be traced back to the batch that owned them.
    """
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError) as exc:  # pragma: no cover - already gone
            _metrics()[2].inc()
            logger.warning(
                "failed to release shared-memory segment",
                extra={"segment": getattr(segment, "name", "?"), "err": repr(exc)},
            )


def _tracker_pid() -> "int | None":
    """PID of this process's running resource-tracker helper, if any."""
    try:  # pragma: no cover - private multiprocessing bookkeeping
        from multiprocessing import resource_tracker

        return getattr(resource_tracker._resource_tracker, "_pid", None)
    except Exception:  # noqa: BLE001 - tracker introspection is best-effort
        return None


def _unregister_attachment(
    segment: "shared_memory.SharedMemory", creator_tracker_pid: "int | None"
) -> None:
    """Undo the reader-side resource_tracker registration (POSIX only).

    Attaching registers the segment for cleanup-at-exit in *this*
    process.  When the worker runs its **own** tracker (spawn start
    method), that registration must be undone or every worker shutdown
    tries to unlink the parent's segment and warns.  When the worker
    *shares* the parent's tracker (fork), the attach-registration was a
    set-level no-op and unregistering would erase the parent's own
    registration — so it must be skipped; the shared-tracker case is
    recognised by the creator's tracker PID travelling in the
    descriptor.
    """
    try:  # pragma: no cover - platform-dependent bookkeeping only
        from multiprocessing import resource_tracker

        if (
            creator_tracker_pid is not None
            and _tracker_pid() == creator_tracker_pid
        ):
            return
        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # noqa: BLE001 - cleanup must never fail a solve
        pass
