"""Command-line runner for the paper-reproduction experiments.

Usage (after ``pip install -e .``)::

    cnash-experiments table1            # Table 1 at the default scale
    cnash-experiments fig7 fig8         # several experiments in one go
    cnash-experiments all --scale smoke # everything, quickly
    python -m repro.experiments all     # equivalent module invocation
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Sequence

from repro.experiments import (
    fig7_robustness,
    fig8_solution_distribution,
    fig9_distinct_solutions,
    fig10_time_to_solution,
    table1_success_rate,
)

_EXPERIMENTS: Dict[str, Callable[[str, int], object]] = {
    "table1": table1_success_rate.main,
    "fig7": lambda scale, seed: fig7_robustness.main(seed=seed),
    "fig8": fig8_solution_distribution.main,
    "fig9": fig9_distinct_solutions.main,
    "fig10": fig10_time_to_solution.main,
}

_ORDER = ("table1", "fig7", "fig8", "fig9", "fig10")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="cnash-experiments",
        description="Reproduce the tables and figures of the C-Nash paper (DAC 2024).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=list(_ORDER) + ["all"],
        help="which experiments to run",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=["smoke", "default", "paper"],
        help="run budget (paper scale takes hours)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--service",
        action="store_true",
        help="route every C-Nash batch through the repro.service scheduler "
        "(sharded worker-pool execution + result cache) instead of solving in-process",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=None,
        help="worker pool size for --service (default: executor default)",
    )
    parser.add_argument(
        "--service-shard-size",
        type=int,
        default=None,
        help="runs per shard for --service (default: scheduler default)",
    )
    parser.add_argument(
        "--service-executor",
        default="process",
        choices=["process", "thread", "inline"],
        help="worker pool kind for --service",
    )
    return parser


def _service_backend(client):
    """A :func:`repro.experiments.common.set_solve_backend` adapter.

    Routes every C-Nash batch through :func:`repro.api.solve` with the
    service client attached, so the scheduler shards it across the
    worker pool and serves repeats from the result cache.
    """
    import repro.api as api
    from repro.backends import SolveSpec

    def solve(game, config, num_runs, seed):
        report = api.solve(
            game,
            backend="cnash",
            spec=SolveSpec(num_runs=num_runs, seed=seed, options={"config": config}),
            client=client,
        )
        batch = report.batch_result()
        assert batch is not None  # the cnash backend always carries a batch
        return batch

    return solve


def main(argv: Sequence[str] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    selected: List[str] = list(args.experiments)
    if "all" in selected:
        selected = list(_ORDER)

    client = None
    if args.service:
        from repro.experiments.common import set_solve_backend
        from repro.service.client import InProcessClient
        from repro.service.scheduler import DEFAULT_SHARD_SIZE

        client = InProcessClient(
            max_workers=args.service_workers,
            shard_size=(
                DEFAULT_SHARD_SIZE
                if args.service_shard_size is None
                else args.service_shard_size
            ),
            executor=args.service_executor,
        )
        previous = set_solve_backend(_service_backend(client))
    try:
        for name in selected:
            print()
            mode = " via repro.service" if args.service else ""
            print(f"### Running {name} (scale={args.scale}, seed={args.seed}){mode}")
            print()
            _EXPERIMENTS[name](args.scale, args.seed)
    finally:
        if client is not None:
            set_solve_backend(previous)
            client.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
