"""Reproduction experiments: one module per paper table/figure plus a CLI runner.

* :mod:`repro.experiments.table1_success_rate` — Table 1 (success rates).
* :mod:`repro.experiments.fig7_robustness` — Fig. 7 (crossbar linearity,
  WTA corners).
* :mod:`repro.experiments.fig8_solution_distribution` — Fig. 8 (solution
  type distributions).
* :mod:`repro.experiments.fig9_distinct_solutions` — Fig. 9 (distinct NE
  solutions found).
* :mod:`repro.experiments.fig10_time_to_solution` — Fig. 10
  (time-to-solution and speedups).

Run them all with ``cnash-experiments all`` or
``python -m repro.experiments all``.
"""

from repro.experiments.common import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    SOLVER_NAMES,
    ExperimentScale,
    GameBudget,
    GameEvaluation,
    BENCHMARK_SUITE,
    benchmark_games,
    benchmark_specs,
    clear_evaluation_cache,
    evaluate_all_games,
    evaluate_game,
    get_scale,
)
from repro.experiments.fig7_robustness import Fig7Result, run_fig7
from repro.experiments.fig8_solution_distribution import Fig8Result, run_fig8
from repro.experiments.fig9_distinct_solutions import Fig9Result, run_fig9
from repro.experiments.fig10_time_to_solution import Fig10Result, run_fig10
from repro.experiments.table1_success_rate import Table1Result, run_table1

__all__ = [
    "ExperimentScale",
    "GameBudget",
    "GameEvaluation",
    "SMOKE_SCALE",
    "DEFAULT_SCALE",
    "PAPER_SCALE",
    "SOLVER_NAMES",
    "get_scale",
    "BENCHMARK_SUITE",
    "benchmark_games",
    "benchmark_specs",
    "evaluate_game",
    "evaluate_all_games",
    "clear_evaluation_cache",
    "run_table1",
    "Table1Result",
    "run_fig7",
    "Fig7Result",
    "run_fig8",
    "Fig8Result",
    "run_fig9",
    "Fig9Result",
    "run_fig10",
    "Fig10Result",
]
