"""Fig. 7 — robustness of the C-Nash hardware components.

(a) Monte-Carlo linearity of a 64x64 crossbar: the column output current
    versus the number of activated cells, across 100 samples of the
    device-to-device variability (sigma = 40 mV V_TH, 8 % resistor).
(b) WTA behaviour across process corners (ss, snfp, fnsp, ff, tt): the
    tree must still select the correct maximum, with corner-dependent
    output level and latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.reporting import render_table
from repro.hardware.corners import all_corners
from repro.hardware.crossbar import FeFETCrossbar
from repro.hardware.noise import PAPER_VARIABILITY, VariabilityModel
from repro.hardware.wta import WTAParameters, WTATree
from repro.utils.rng import spawn_generators


@dataclass
class CrossbarLinearityResult:
    """Monte-Carlo linearity study of one crossbar column (Fig. 7(a))."""

    activated_counts: np.ndarray
    currents_ua: np.ndarray  # shape (num_samples, num_counts)

    @property
    def num_samples(self) -> int:
        """Number of Monte-Carlo samples."""
        return int(self.currents_ua.shape[0])

    @property
    def mean_currents_ua(self) -> np.ndarray:
        """Mean column current per activated-cell count."""
        return self.currents_ua.mean(axis=0)

    @property
    def std_currents_ua(self) -> np.ndarray:
        """Standard deviation of the column current per count."""
        return self.currents_ua.std(axis=0)

    @property
    def linearity_r2(self) -> float:
        """Coefficient of determination of a linear fit of mean current vs count."""
        x = self.activated_counts.astype(float)
        y = self.mean_currents_ua
        coeffs = np.polyfit(x, y, 1)
        prediction = np.polyval(coeffs, x)
        residual = np.sum((y - prediction) ** 2)
        total = np.sum((y - y.mean()) ** 2)
        if total == 0:
            return 1.0
        return float(1.0 - residual / total)

    @property
    def max_relative_spread(self) -> float:
        """Largest std/mean ratio over the non-zero counts."""
        mean = self.mean_currents_ua
        std = self.std_currents_ua
        nonzero = mean > 0
        if not np.any(nonzero):
            return 0.0
        return float((std[nonzero] / mean[nonzero]).max())


@dataclass
class WTACornerResult:
    """WTA tree behaviour at one process corner (Fig. 7(b))."""

    corner_name: str
    selected_correct_max: bool
    relative_error: float
    latency_ns: float
    output_current_ua: float


@dataclass
class Fig7Result:
    """Combined robustness results."""

    linearity: CrossbarLinearityResult
    wta_corners: List[WTACornerResult] = field(default_factory=list)

    def all_corners_correct(self) -> bool:
        """Whether the WTA tree picked the true maximum at every corner."""
        return all(corner.selected_correct_max for corner in self.wta_corners)

    def render(self) -> str:
        """Plain-text rendering of both panels."""
        lines = [
            "Fig. 7(a): 64x64 crossbar Monte-Carlo linearity "
            f"({self.linearity.num_samples} runs)",
            f"  linear-fit R^2          : {self.linearity.linearity_r2:.6f}",
            f"  max relative spread      : {self.linearity.max_relative_spread:.4f}",
            f"  current @ 64 cells (uA)  : {self.linearity.mean_currents_ua[-1]:.2f}",
            "",
        ]
        headers = ["Corner", "Correct max", "Relative error", "Latency (ns)", "Output (uA)"]
        rows = [
            [
                corner.corner_name,
                "yes" if corner.selected_correct_max else "NO",
                f"{corner.relative_error:.4f}",
                f"{corner.latency_ns:.3f}",
                f"{corner.output_current_ua:.3f}",
            ]
            for corner in self.wta_corners
        ]
        lines.append(render_table(headers, rows, title="Fig. 7(b): WTA tree across process corners"))
        return "\n".join(lines)


def run_crossbar_linearity(
    rows: int = 64,
    columns: int = 64,
    num_monte_carlo: int = 100,
    variability: VariabilityModel = PAPER_VARIABILITY,
    seed: int = 0,
) -> CrossbarLinearityResult:
    """Fig. 7(a): sweep the activated-cell count across Monte-Carlo samples."""
    if num_monte_carlo < 1:
        raise ValueError(f"num_monte_carlo must be >= 1, got {num_monte_carlo}")
    counts = np.arange(0, rows + 1, max(1, rows // 16))
    if counts[-1] != rows:
        counts = np.append(counts, rows)
    currents = np.empty((num_monte_carlo, len(counts)))
    generators = spawn_generators(seed, num_monte_carlo)
    for sample_index, rng in enumerate(generators):
        crossbar = FeFETCrossbar(rows, columns, variability=variability, seed=rng)
        crossbar.program(np.ones((rows, columns), dtype=int))
        _, column_currents = crossbar.column_linearity_sweep(
            column=0, activated_counts=counts, seed=rng
        )
        currents[sample_index] = column_currents * 1e6
    return CrossbarLinearityResult(activated_counts=counts, currents_ua=currents)


def run_wta_corners(
    num_inputs: int = 4,
    seed: int = 0,
) -> List[WTACornerResult]:
    """Fig. 7(b): exercise the WTA tree at every process corner."""
    rng_inputs = np.array([12.0e-6, 18.0e-6, 15.0e-6, 9.0e-6])[:num_inputs]
    if num_inputs > 4:
        rng_inputs = np.linspace(5e-6, 20e-6, num_inputs)
    results = []
    for corner in all_corners():
        tree = WTATree(num_inputs, parameters=WTAParameters(), corner=corner, seed=seed)
        output = tree.output_current_a(rng_inputs)
        exact = float(rng_inputs.max())
        # Each tree level multiplies by the corner's mirror gain; remove that
        # systematic factor before judging whether the true maximum was selected.
        normalised = output / (corner.mirror_gain**tree.num_levels)
        runner_up = float(np.sort(rng_inputs)[-2]) if num_inputs > 1 else exact
        selected_correct = abs(normalised - exact) < abs(normalised - runner_up)
        results.append(
            WTACornerResult(
                corner_name=corner.name,
                selected_correct_max=bool(selected_correct),
                relative_error=abs(normalised - exact) / exact,
                latency_ns=tree.latency_ns,
                output_current_ua=output * 1e6,
            )
        )
    return results


def run_fig7(
    num_monte_carlo: int = 100,
    crossbar_size: int = 64,
    seed: int = 0,
) -> Fig7Result:
    """Reproduce both panels of Fig. 7."""
    linearity = run_crossbar_linearity(
        rows=crossbar_size,
        columns=crossbar_size,
        num_monte_carlo=num_monte_carlo,
        seed=seed,
    )
    corners = run_wta_corners(seed=seed)
    return Fig7Result(linearity=linearity, wta_corners=corners)


def main(num_monte_carlo: int = 100, seed: int = 0) -> Fig7Result:
    """Run and print Fig. 7 (entry point used by the CLI runner)."""
    result = run_fig7(num_monte_carlo=num_monte_carlo, seed=seed)
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
