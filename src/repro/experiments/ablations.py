"""Ablation experiments beyond the paper's figures.

DESIGN.md calls out the design choices whose impact is worth quantifying:

* the strategy quantisation ``I`` (how finely mixed strategies are
  resolved by the crossbar mapping),
* the SA iteration budget,
* hardware non-idealities (ADC resolution and FeFET variability),
* the MAX-QUBO transformation itself versus the lossy S-QUBO baseline on
  a game with only mixed equilibria.

Each ablation returns a :class:`~repro.analysis.sweeps.SweepResult` (or a
small dataclass for the transformation ablation) and has a ``render``
helper, mirroring the table/figure experiment modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.reporting import render_table
from repro.analysis.sweeps import (
    SweepResult,
    sweep_adc_bits,
    sweep_num_intervals,
    sweep_num_iterations,
    sweep_variability,
)
from repro.baselines.dwave_like import DWaveLikeSolver
from repro.core.config import CNashConfig
from repro.core.solver import CNashSolver
from repro.games.bimatrix import BimatrixGame
from repro.games.library import battle_of_the_sexes, bird_game, matching_pennies


def render_sweep(result: SweepResult, title: str) -> str:
    """Render a sweep result as an aligned text table."""
    headers = ["Point", "Success (%)", "Mixed (%)", "Distinct found", "Mean objective"]
    return render_table(headers, result.as_rows(), title=title)


def ablation_quantization(
    game: Optional[BimatrixGame] = None,
    intervals: Sequence[int] = (2, 4, 6, 8, 12),
    num_runs: int = 30,
    seed: int = 0,
) -> SweepResult:
    """How the quantisation interval affects success and mixed-solution discovery."""
    game = game or battle_of_the_sexes()
    config = CNashConfig(num_iterations=1500)
    return sweep_num_intervals(game, intervals, base_config=config, num_runs=num_runs, seed=seed)


def ablation_iterations(
    game: Optional[BimatrixGame] = None,
    iteration_counts: Sequence[int] = (250, 500, 1000, 2000, 4000),
    num_runs: int = 20,
    seed: int = 0,
) -> SweepResult:
    """How the SA iteration budget affects success rate (convergence curve)."""
    game = game or bird_game()
    config = CNashConfig(num_intervals=8)
    return sweep_num_iterations(
        game, iteration_counts, base_config=config, num_runs=num_runs, seed=seed
    )


def ablation_adc_resolution(
    game: Optional[BimatrixGame] = None,
    bit_widths: Sequence[int] = (4, 6, 8, 10),
    num_runs: int = 10,
    seed: int = 0,
) -> SweepResult:
    """How ADC resolution affects hardware-in-the-loop success rate."""
    game = game or battle_of_the_sexes()
    config = CNashConfig(num_intervals=4, num_iterations=1200)
    return sweep_adc_bits(game, bit_widths, base_config=config, num_runs=num_runs, seed=seed)


def ablation_device_variability(
    game: Optional[BimatrixGame] = None,
    vth_sigmas_mv: Sequence[float] = (0.0, 40.0, 80.0, 160.0),
    num_runs: int = 10,
    seed: int = 0,
) -> SweepResult:
    """How FeFET V_TH variability affects hardware-in-the-loop success rate."""
    game = game or battle_of_the_sexes()
    config = CNashConfig(num_intervals=4, num_iterations=1200)
    return sweep_variability(game, vth_sigmas_mv, base_config=config, num_runs=num_runs, seed=seed)


@dataclass
class TransformationAblationResult:
    """MAX-QUBO vs S-QUBO on a game whose only equilibrium is mixed."""

    game_name: str
    cnash_success_rate: float
    cnash_mixed_fraction: float
    baseline_success_rate: float

    def render(self) -> str:
        """Plain-text rendering of the comparison."""
        headers = ["Solver", "Success (%)", "Mixed solutions (%)"]
        rows = [
            ["C-Nash (MAX-QUBO)", 100.0 * self.cnash_success_rate, 100.0 * self.cnash_mixed_fraction],
            ["S-QUBO baseline", 100.0 * self.baseline_success_rate, 0.0],
        ]
        return render_table(
            headers, rows, title=f"Transformation ablation on {self.game_name}"
        )


def ablation_transformation(
    game: Optional[BimatrixGame] = None,
    num_runs: int = 20,
    seed: int = 0,
) -> TransformationAblationResult:
    """The core ablation: lossless MAX-QUBO vs lossy, pure-only S-QUBO.

    On Matching Pennies (default) the unique equilibrium is fully mixed,
    so the S-QUBO baseline cannot succeed at all while C-Nash can.
    """
    game = game or matching_pennies()
    solver = CNashSolver(game, CNashConfig(num_intervals=4, num_iterations=1500))
    batch = solver.solve_batch(num_runs=num_runs, seed=seed)
    baseline = DWaveLikeSolver(game, num_sweeps=200, seed=seed)
    baseline_batch = baseline.sample_batch(num_runs, seed=seed + 1)
    return TransformationAblationResult(
        game_name=game.name,
        cnash_success_rate=batch.success_rate,
        cnash_mixed_fraction=batch.classification_fractions()["mixed"],
        baseline_success_rate=baseline_batch.success_rate,
    )


def main(seed: int = 0) -> None:
    """Run and print all ablations (used by ``python -m repro.experiments.ablations``)."""
    print(render_sweep(ablation_quantization(seed=seed), "Ablation: strategy quantisation I"))
    print()
    print(render_sweep(ablation_iterations(seed=seed), "Ablation: SA iteration budget"))
    print()
    print(render_sweep(ablation_adc_resolution(seed=seed), "Ablation: ADC resolution"))
    print()
    print(
        render_sweep(
            ablation_device_variability(seed=seed), "Ablation: FeFET V_TH variability"
        )
    )
    print()
    print(ablation_transformation(seed=seed).render())


if __name__ == "__main__":  # pragma: no cover
    main()
