"""Fig. 10 — time-to-solution comparison.

The paper reports the average time each solver needs to find an NE
solution: C-Nash times come from the FeFET crossbar iteration latency
times the iterations needed, D-Wave times from the machines' per-sample
timing.  C-Nash is reported 105.3–157.9x faster than the 2000 Q6 and
18.4–79.0x faster than the Advantage 4.1.

Here the C-Nash time uses :class:`~repro.hardware.timing.CNashTimingModel`
with the measured iterations-to-solution statistics, and the baseline
times use the machine profiles with the measured per-sample success
rates, so the *ratios* are the quantity to compare against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.reporting import render_bar_chart, render_table
from repro.baselines.literature import FIG10_SPEEDUP_OVER_CNASH, PAPER_GAME_NAMES
from repro.experiments.common import (
    DEFAULT_SCALE,
    SOLVER_NAMES,
    ExperimentScale,
    evaluate_all_games,
)


@dataclass
class Fig10Result:
    """Measured time-to-solution per solver per game, plus speedups."""

    scale_name: str
    times_s: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    reported_speedups: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)

    def time_s(self, game: str, solver: str) -> Optional[float]:
        """Measured time-to-solution (seconds); None when never successful."""
        return self.times_s[game][solver]

    def speedup(self, game: str, baseline: str) -> Optional[float]:
        """Measured C-Nash speedup over one baseline on one game."""
        cnash = self.times_s[game]["C-Nash"]
        other = self.times_s[game][baseline]
        if cnash is None or other is None or cnash == 0:
            return None
        return other / cnash

    def cnash_fastest(self, game: str) -> bool:
        """Whether measured C-Nash is the fastest solver on ``game``."""
        cnash = self.times_s[game]["C-Nash"]
        if cnash is None:
            return False
        others = [
            self.times_s[game][solver]
            for solver in SOLVER_NAMES
            if solver != "C-Nash" and self.times_s[game][solver] is not None
        ]
        return all(cnash <= other for other in others) if others else True

    def render(self) -> str:
        """Plain-text rendering: times table plus per-game speedup bars."""
        headers = ["Game"] + [f"{solver} (s)" for solver in SOLVER_NAMES] + [
            "Speedup vs 2000Q6 (measured/paper)",
            "Speedup vs Advantage (measured/paper)",
        ]
        rows = []
        for game in PAPER_GAME_NAMES:
            row = [game]
            for solver in SOLVER_NAMES:
                value = self.times_s[game][solver]
                row.append(f"{value:.3e}" if value is not None else "-")
            for baseline in ("D-Wave 2000 Q6", "D-Wave Advantage 4.1"):
                measured = self.speedup(game, baseline)
                reported = self.reported_speedups.get(baseline, {}).get(game)
                measured_text = f"{measured:.1f}x" if measured is not None else "-"
                reported_text = f"{reported:.1f}x" if reported is not None else "-"
                row.append(f"{measured_text} / {reported_text}")
            rows.append(row)
        table = render_table(
            headers, rows, title=f"Fig. 10: time to solution [{self.scale_name} scale]"
        )
        charts = []
        for game in PAPER_GAME_NAMES:
            labels = list(SOLVER_NAMES)
            values = [self.times_s[game][solver] for solver in SOLVER_NAMES]
            charts.append(
                render_bar_chart(labels, values, title=f"Time to solution — {game}", unit=" s")
            )
        return table + "\n\n" + "\n\n".join(charts)


def run_fig10(scale: ExperimentScale = DEFAULT_SCALE, seed: int = 0) -> Fig10Result:
    """Reproduce Fig. 10 at the given scale."""
    evaluations = evaluate_all_games(scale, seed=seed)
    result = Fig10Result(scale_name=scale.name, reported_speedups=FIG10_SPEEDUP_OVER_CNASH)
    times: Dict[str, Dict[str, Optional[float]]] = {}
    for game_name, evaluation in evaluations.items():
        per_solver: Dict[str, Optional[float]] = {}
        per_solver["C-Nash"] = evaluation.cnash_solver.time_to_solution_s(
            evaluation.cnash_batch
        )
        for solver_name in SOLVER_NAMES:
            if solver_name == "C-Nash":
                continue
            solver = evaluation.baseline_solvers[solver_name]
            batch = evaluation.baseline_batches[solver_name]
            per_solver[solver_name] = solver.time_to_solution_s(batch)
        times[game_name] = per_solver
    result.times_s = times
    return result


def main(scale_name: str = "default", seed: int = 0) -> Fig10Result:
    """Run and print Fig. 10 (entry point used by the CLI runner)."""
    from repro.experiments.common import get_scale

    result = run_fig10(get_scale(scale_name), seed=seed)
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
