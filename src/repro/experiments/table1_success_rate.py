"""Table 1 — success rates of finding an NE solution.

For each of the three benchmark games and each solver (D-Wave 2000 Q6,
D-Wave Advantage 4.1, C-Nash) the paper reports the percentage of runs /
samples that produced a Nash equilibrium.  This module reruns that
protocol with the simulated solvers and reports measured values next to
the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.reporting import render_table
from repro.baselines.literature import (
    PAPER_GAME_NAMES,
    TABLE1_SUCCESS_RATE_PERCENT,
)
from repro.experiments.common import (
    DEFAULT_SCALE,
    SOLVER_NAMES,
    ExperimentScale,
    evaluate_all_games,
)


@dataclass
class Table1Result:
    """Measured and paper-reported success rates (percent)."""

    scale_name: str
    measured: Dict[str, Dict[str, float]] = field(default_factory=dict)
    reported: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)

    def measured_rate(self, solver: str, game: str) -> float:
        """Measured success rate (percent) of one solver on one game."""
        return self.measured[solver][game]

    def reported_rate(self, solver: str, game: str) -> Optional[float]:
        """Paper-reported success rate (percent), ``None`` if not reported."""
        return self.reported[solver][game]

    def cnash_beats_baselines(self, game: str) -> bool:
        """Whether measured C-Nash success is >= both measured baselines."""
        cnash = self.measured["C-Nash"][game]
        return all(
            cnash >= self.measured[solver][game]
            for solver in SOLVER_NAMES
            if solver != "C-Nash"
        )

    def render(self) -> str:
        """Plain-text rendering in the paper's row/column layout."""
        headers = ["Nash Solver"] + [
            f"{game} (measured / paper)" for game in PAPER_GAME_NAMES
        ]
        rows = []
        for solver in SOLVER_NAMES:
            row = [solver]
            for game in PAPER_GAME_NAMES:
                measured = self.measured[solver][game]
                reported = self.reported[solver][game]
                reported_text = f"{reported:.2f}" if reported is not None else "-"
                row.append(f"{measured:.2f} / {reported_text}")
            rows.append(row)
        return render_table(
            headers, rows, title=f"Table 1: Success rates (%) [{self.scale_name} scale]"
        )


def run_table1(
    scale: ExperimentScale = DEFAULT_SCALE, seed: int = 0
) -> Table1Result:
    """Reproduce Table 1 at the given scale."""
    evaluations = evaluate_all_games(scale, seed=seed)
    result = Table1Result(scale_name=scale.name, reported=TABLE1_SUCCESS_RATE_PERCENT)
    measured: Dict[str, Dict[str, float]] = {solver: {} for solver in SOLVER_NAMES}
    for game_name, evaluation in evaluations.items():
        measured["C-Nash"][game_name] = 100.0 * evaluation.cnash_batch.success_rate
        for solver_name in SOLVER_NAMES:
            if solver_name == "C-Nash":
                continue
            batch = evaluation.baseline_batches[solver_name]
            measured[solver_name][game_name] = 100.0 * batch.success_rate
    result.measured = measured
    return result


def main(scale_name: str = "default", seed: int = 0) -> Table1Result:
    """Run and print Table 1 (entry point used by the CLI runner)."""
    from repro.experiments.common import get_scale

    result = run_table1(get_scale(scale_name), seed=seed)
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
