"""Fig. 8 — distribution of solution types per solver per game.

For every benchmark game the paper shows, per solver, the fraction of
runs/samples whose outcome was an error solution, a pure NE, or a mixed
NE.  The headline observation is that the S-QUBO baselines never produce
mixed solutions (they cannot represent them) while C-Nash does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.distributions import SolutionDistributionSummary
from repro.analysis.reporting import render_distribution_chart
from repro.baselines.literature import (
    FIG8_SOLUTION_DISTRIBUTIONS,
    PAPER_GAME_NAMES,
    SolutionDistribution,
)
from repro.experiments.common import (
    DEFAULT_SCALE,
    SOLVER_NAMES,
    ExperimentScale,
    evaluate_all_games,
)


@dataclass
class Fig8Result:
    """Measured and paper-reported solution distributions."""

    scale_name: str
    measured: Dict[str, Dict[str, SolutionDistributionSummary]] = field(default_factory=dict)
    reported: Dict[str, Dict[str, Optional[SolutionDistribution]]] = field(default_factory=dict)

    def distribution(self, game: str, solver: str) -> SolutionDistributionSummary:
        """Measured distribution of one solver on one game."""
        return self.measured[game][solver]

    def cnash_finds_mixed(self, game: str) -> bool:
        """Whether measured C-Nash produced at least one mixed NE on ``game``."""
        return self.measured[game]["C-Nash"].finds_mixed_solutions()

    def baselines_find_no_mixed(self, game: str) -> bool:
        """Whether neither baseline produced a mixed NE on ``game``."""
        return all(
            not self.measured[game][solver].finds_mixed_solutions()
            for solver in SOLVER_NAMES
            if solver != "C-Nash"
        )

    def render(self) -> str:
        """Plain-text rendering: one stacked bar chart per game."""
        sections = []
        for game in PAPER_GAME_NAMES:
            entries = {
                solver: self.measured[game][solver].fractions for solver in SOLVER_NAMES
            }
            sections.append(
                render_distribution_chart(
                    entries,
                    title=f"Fig. 8: solution distribution — {game} [{self.scale_name} scale]",
                )
            )
        return "\n\n".join(sections)


def run_fig8(scale: ExperimentScale = DEFAULT_SCALE, seed: int = 0) -> Fig8Result:
    """Reproduce Fig. 8 at the given scale."""
    evaluations = evaluate_all_games(scale, seed=seed)
    result = Fig8Result(scale_name=scale.name, reported=FIG8_SOLUTION_DISTRIBUTIONS)
    measured: Dict[str, Dict[str, SolutionDistributionSummary]] = {}
    for game_name, evaluation in evaluations.items():
        per_solver: Dict[str, SolutionDistributionSummary] = {}
        cnash_classifications = [run.classification for run in evaluation.cnash_batch.runs]
        per_solver["C-Nash"] = SolutionDistributionSummary.from_classifications(
            "C-Nash", game_name, cnash_classifications, list(evaluation.cnash_distinct())
        )
        for solver_name in SOLVER_NAMES:
            if solver_name == "C-Nash":
                continue
            batch = evaluation.baseline_batches[solver_name]
            classifications = [run.classification for run in batch.runs]
            per_solver[solver_name] = SolutionDistributionSummary.from_classifications(
                solver_name,
                game_name,
                classifications,
                list(evaluation.baseline_distinct(solver_name)),
            )
        measured[game_name] = per_solver
    result.measured = measured
    return result


def main(scale_name: str = "default", seed: int = 0) -> Fig8Result:
    """Run and print Fig. 8 (entry point used by the CLI runner)."""
    from repro.experiments.common import get_scale

    result = run_fig8(get_scale(scale_name), seed=seed)
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
