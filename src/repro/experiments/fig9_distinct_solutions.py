"""Fig. 9 — proportion of distinct NE solutions found by each solver.

The paper counts, for each game, how many of the ground-truth equilibria
(obtained from Nashpy) each solver discovered across all its runs.
C-Nash finds all of them (3/3, 6/6, 25/25); the S-QUBO baselines find
only a subset of the pure ones.  Here the ground truth is computed by our
own support-enumeration solver and the same counting is applied to the
simulated solvers' output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.metrics import DistinctSolutionMetric, distinct_solutions_found
from repro.analysis.reporting import render_table
from repro.baselines.literature import (
    FIG9_SOLUTIONS_FOUND,
    FIG9_TARGET_SOLUTIONS,
    PAPER_GAME_NAMES,
)
from repro.experiments.common import (
    DEFAULT_SCALE,
    SOLVER_NAMES,
    ExperimentScale,
    evaluate_all_games,
)


@dataclass
class Fig9Result:
    """Distinct-solution counts: measured (vs our ground truth) and paper."""

    scale_name: str
    measured: Dict[str, Dict[str, DistinctSolutionMetric]] = field(default_factory=dict)
    measured_targets: Dict[str, int] = field(default_factory=dict)
    reported_targets: Dict[str, int] = field(default_factory=dict)
    reported_found: Dict[str, Dict[str, Optional[int]]] = field(default_factory=dict)

    def metric(self, game: str, solver: str) -> DistinctSolutionMetric:
        """Measured distinct-solution metric of one solver on one game."""
        return self.measured[game][solver]

    def cnash_fraction(self, game: str) -> float:
        """Fraction of our ground-truth equilibria C-Nash found on ``game``."""
        return self.measured[game]["C-Nash"].fraction

    def render(self) -> str:
        """Plain-text rendering in the paper's layout."""
        headers = ["Game", "Target (ours / paper)"] + list(SOLVER_NAMES)
        rows = []
        for game in PAPER_GAME_NAMES:
            row = [
                game,
                f"{self.measured_targets[game]} / {self.reported_targets.get(game, '-')}",
            ]
            for solver in SOLVER_NAMES:
                metric = self.measured[game][solver]
                paper = self.reported_found.get(solver, {}).get(game)
                paper_text = str(paper) if paper is not None else "-"
                row.append(f"{metric.found}/{metric.target} (paper {paper_text})")
            rows.append(row)
        return render_table(
            headers,
            rows,
            title=f"Fig. 9: distinct NE solutions found [{self.scale_name} scale]",
        )


def run_fig9(scale: ExperimentScale = DEFAULT_SCALE, seed: int = 0) -> Fig9Result:
    """Reproduce Fig. 9 at the given scale."""
    evaluations = evaluate_all_games(scale, seed=seed)
    result = Fig9Result(
        scale_name=scale.name,
        reported_targets=FIG9_TARGET_SOLUTIONS,
        reported_found=FIG9_SOLUTIONS_FOUND,
    )
    measured: Dict[str, Dict[str, DistinctSolutionMetric]] = {}
    targets: Dict[str, int] = {}
    for game_name, evaluation in evaluations.items():
        ground_truth = evaluation.ground_truth
        targets[game_name] = len(ground_truth)
        per_solver: Dict[str, DistinctSolutionMetric] = {}
        per_solver["C-Nash"] = distinct_solutions_found(
            ground_truth,
            evaluation.cnash_batch.successful_profiles,
            atol=evaluation.match_atol,
        )
        for solver_name in SOLVER_NAMES:
            if solver_name == "C-Nash":
                continue
            batch = evaluation.baseline_batches[solver_name]
            per_solver[solver_name] = distinct_solutions_found(
                ground_truth, batch.successful_profiles, atol=1e-3
            )
        measured[game_name] = per_solver
    result.measured = measured
    result.measured_targets = targets
    return result


def main(scale_name: str = "default", seed: int = 0) -> Fig9Result:
    """Run and print Fig. 9 (entry point used by the CLI runner)."""
    from repro.experiments.common import get_scale

    result = run_fig9(get_scale(scale_name), seed=seed)
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
