"""Shared infrastructure for the paper-reproduction experiments.

Table 1 and Figs. 8–10 are all derived from the same underlying runs
(C-Nash SA batches and baseline sample batches on the three benchmark
games), so this module provides:

* :class:`ExperimentScale` — smoke / default / paper-scale run budgets.
  The paper's protocol (5000 runs of 10k–50k iterations per game) takes
  hours in a Python simulation; the default scale preserves the
  comparison structure at a laptop-friendly budget, and ``paper`` scale
  is available for full-fidelity reruns.
* :class:`GameEvaluation` — the bundle of per-game results every
  downstream experiment consumes.
* :func:`evaluate_game` / :func:`evaluate_all_games` — run (and cache,
  per process) the solvers on the benchmark games.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.metrics import ground_truth_equilibria
from repro.baselines.dwave_like import BaselineBatchResult, DWaveLikeSolver
from repro.baselines.literature import canonical_game_name
from repro.baselines.machines import DWAVE_2000Q6, DWAVE_ADVANTAGE_4_1, AnnealerProfile
from repro.core.config import CNashConfig
from repro.core.result import SolverBatchResult
from repro.core.solver import CNashSolver
from repro.games.bimatrix import BimatrixGame
from repro.games.equilibrium import EquilibriumSet
from repro.games.spec import GameSpec

#: Names of the solvers compared in every experiment, in table order.
SOLVER_NAMES = ("D-Wave 2000 Q6", "D-Wave Advantage 4.1", "C-Nash")

#: The paper's benchmark suite as declarative workload specs, in the
#: paper's order (increasing action count).  This — not a hard-coded
#: list of constructor calls — is what every experiment materialises,
#: so swapping or extending the suite (including ``--scale``-dependent
#: sweeps) is a data change.
BENCHMARK_SUITE: Tuple[GameSpec, ...] = (
    GameSpec.library("battle_of_the_sexes"),
    GameSpec.library("bird_game"),
    GameSpec.library("modified_prisoners_dilemma"),
)


@dataclass(frozen=True)
class GameBudget:
    """Run budget for one game at one scale."""

    num_runs: int
    num_iterations: int
    num_intervals: int
    baseline_samples: int
    baseline_sweeps: int


@dataclass(frozen=True)
class ExperimentScale:
    """A complete experiment budget across the benchmark suite.

    The games themselves are data too: ``suite`` is a tuple of
    :class:`~repro.games.spec.GameSpec` descriptions (defaulting to the
    paper's three benchmarks), so a scale can swap in a different or
    generated suite without any experiment code change.
    """

    name: str
    budgets: Dict[str, GameBudget]
    use_hardware: bool = False
    suite: Tuple[GameSpec, ...] = BENCHMARK_SUITE

    def budget_for(self, game_name: str) -> GameBudget:
        """The budget of one benchmark game (by canonical name)."""
        key = canonical_game_name(game_name)
        return self.budgets[key]

    def games(self) -> List[BimatrixGame]:
        """Materialise the scale's benchmark suite."""
        return [spec.materialize() for spec in self.suite]


#: Minimal budget used by the test suite and CI smoke runs.
SMOKE_SCALE = ExperimentScale(
    name="smoke",
    budgets={
        "Battle of the Sexes": GameBudget(10, 800, 6, 8, 60),
        "Bird Game": GameBudget(10, 1500, 6, 8, 60),
        "Modified Prisoner's Dilemma": GameBudget(6, 2500, 4, 4, 60),
    },
)

#: Default laptop-scale budget (a few minutes for the full experiment set).
DEFAULT_SCALE = ExperimentScale(
    name="default",
    budgets={
        "Battle of the Sexes": GameBudget(100, 2000, 6, 40, 200),
        "Bird Game": GameBudget(100, 4000, 8, 40, 300),
        "Modified Prisoner's Dilemma": GameBudget(60, 8000, 8, 25, 500),
    },
)

#: The paper's full protocol (5000 runs; 10k/15k/50k iterations).
PAPER_SCALE = ExperimentScale(
    name="paper",
    budgets={
        "Battle of the Sexes": GameBudget(5000, 10_000, 6, 1000, 300),
        "Bird Game": GameBudget(5000, 15_000, 8, 1000, 300),
        "Modified Prisoner's Dilemma": GameBudget(5000, 50_000, 8, 1000, 300),
    },
)

_SCALES = {scale.name: scale for scale in (SMOKE_SCALE, DEFAULT_SCALE, PAPER_SCALE)}


def get_scale(name: str) -> ExperimentScale:
    """Look up an experiment scale by name."""
    key = name.strip().lower()
    if key not in _SCALES:
        raise KeyError(f"unknown scale {name!r}; available: {', '.join(sorted(_SCALES))}")
    return _SCALES[key]


def benchmark_specs(scale: Optional[ExperimentScale] = None) -> Tuple[GameSpec, ...]:
    """The benchmark suite as workload specs (a scale may override it)."""
    return BENCHMARK_SUITE if scale is None else scale.suite


def benchmark_games(scale: Optional[ExperimentScale] = None) -> List[BimatrixGame]:
    """The benchmark games in the paper's order, materialised from specs."""
    return [spec.materialize() for spec in benchmark_specs(scale)]


@dataclass
class GameEvaluation:
    """Everything the experiments need about one game."""

    game: BimatrixGame
    canonical_name: str
    ground_truth: EquilibriumSet
    cnash_solver: CNashSolver
    cnash_batch: SolverBatchResult
    baseline_solvers: Dict[str, DWaveLikeSolver]
    baseline_batches: Dict[str, BaselineBatchResult]
    budget: GameBudget

    @property
    def match_atol(self) -> float:
        """Tolerance used when matching found solutions to ground truth."""
        return 0.6 / self.budget.num_intervals

    def cnash_distinct(self) -> EquilibriumSet:
        """Distinct equilibria C-Nash found in its batch."""
        return self.cnash_solver.distinct_solutions(self.cnash_batch)

    def baseline_distinct(self, solver_name: str) -> EquilibriumSet:
        """Distinct equilibria one baseline found in its batch."""
        solver = self.baseline_solvers[solver_name]
        return solver.distinct_solutions(self.baseline_batches[solver_name])


#: Signature of a pluggable C-Nash batch backend:
#: ``(game, config, num_runs, seed) -> SolverBatchResult``.
SolveBackend = Callable[[BimatrixGame, CNashConfig, int, int], SolverBatchResult]

_SOLVE_BACKEND: Optional[SolveBackend] = None


def set_solve_backend(backend: Optional[SolveBackend]) -> Optional[SolveBackend]:
    """Install (or, with ``None``, remove) the C-Nash batch backend.

    By default :func:`evaluate_game` calls ``CNashSolver.solve_batch``
    in-process.  The experiment runner's ``--service`` mode installs a
    backend that routes every batch through the
    :mod:`repro.service` scheduler instead (sharded worker-pool
    execution + result cache), which makes the whole benchmark suite a
    service workload.  Returns the previously installed backend so
    callers can restore it.
    """
    global _SOLVE_BACKEND
    previous = _SOLVE_BACKEND
    _SOLVE_BACKEND = backend
    return previous


_EVALUATION_CACHE: Dict[Tuple[str, int, bool], Dict[str, GameEvaluation]] = {}


def evaluate_game(
    game: BimatrixGame,
    scale: ExperimentScale,
    seed: int = 0,
) -> GameEvaluation:
    """Run C-Nash and both baselines on one game at the given scale."""
    budget = scale.budget_for(game.name)
    config = CNashConfig(
        num_intervals=budget.num_intervals,
        num_iterations=budget.num_iterations,
        use_hardware=scale.use_hardware,
    )
    # The solver instance doubles as the GameEvaluation's analysis handle
    # (distinct_solutions, timing model), so the default path solves on
    # it directly rather than re-constructing one inside the facade —
    # CNashBackend performs the identical computation for the same
    # (game, config, seed).  The runner's --service mode installs a
    # backend that routes every batch through repro.api instead.
    cnash = CNashSolver(game, config, seed=seed)
    if _SOLVE_BACKEND is not None:
        cnash_batch = _SOLVE_BACKEND(game, config, budget.num_runs, seed)
    else:
        cnash_batch = cnash.solve_batch(num_runs=budget.num_runs, seed=seed)

    baseline_solvers: Dict[str, DWaveLikeSolver] = {}
    baseline_batches: Dict[str, BaselineBatchResult] = {}
    machines: Dict[str, AnnealerProfile] = {
        "D-Wave 2000 Q6": DWAVE_2000Q6,
        "D-Wave Advantage 4.1": DWAVE_ADVANTAGE_4_1,
    }
    for solver_name, machine in machines.items():
        solver = DWaveLikeSolver(
            game, machine=machine, num_sweeps=budget.baseline_sweeps, seed=seed
        )
        baseline_solvers[solver_name] = solver
        baseline_batches[solver_name] = solver.sample_batch(
            budget.baseline_samples, seed=seed + 1
        )

    return GameEvaluation(
        game=game,
        canonical_name=canonical_game_name(game.name),
        ground_truth=ground_truth_equilibria(game),
        cnash_solver=cnash,
        cnash_batch=cnash_batch,
        baseline_solvers=baseline_solvers,
        baseline_batches=baseline_batches,
        budget=budget,
    )


def evaluate_all_games(
    scale: ExperimentScale = DEFAULT_SCALE,
    seed: int = 0,
    use_cache: bool = True,
) -> Dict[str, GameEvaluation]:
    """Evaluate the three benchmark games, caching per (scale, seed) in-process.

    The cache means Table 1 and Figs. 8–10 share one set of runs, exactly
    as in the paper's protocol.
    """
    key = (scale.name, seed, scale.use_hardware)
    if use_cache and key in _EVALUATION_CACHE:
        return _EVALUATION_CACHE[key]
    evaluations = {}
    for game in benchmark_games(scale):
        evaluation = evaluate_game(game, scale, seed=seed)
        evaluations[evaluation.canonical_name] = evaluation
    if use_cache:
        _EVALUATION_CACHE[key] = evaluations
    return evaluations


def clear_evaluation_cache() -> None:
    """Drop all cached evaluations (used by tests)."""
    _EVALUATION_CACHE.clear()
