"""Vectorized chain-parallel simulated-annealing engine.

The paper's evaluation protocol runs thousands of *independent* SA chains
per game (5000 runs in Table 1).  :class:`SimulatedAnnealer` executes one
chain at a time, which makes every iteration a handful of tiny NumPy
operations dominated by Python overhead.  :class:`VectorizedAnnealer`
instead runs all ``B`` chains in lockstep: per iteration it proposes one
move per chain, evaluates all candidate energies as a single stacked
array operation, and applies the Metropolis rule to the whole batch at
once.  This is the same array-level parallelism a crossbar accelerator
exploits physically — one analog evaluation per chain per cycle, many
chains per array.

Problems plug in through the :class:`BatchAnnealingProblem` interface,
whose states are *stacked* batch objects (e.g. ``(B, n)`` count arrays)
rather than lists of per-chain states.  The per-chain results can be
unstacked into ordinary :class:`~repro.annealing.engine.AnnealingResult`
objects for drop-in compatibility with the sequential engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.annealing.engine import AnnealingConfig, AnnealingResult
from repro.utils.rng import SeedLike, as_generator

BatchStateT = TypeVar("BatchStateT")


class BatchAnnealingProblem(ABC, Generic[BatchStateT]):
    """A problem whose whole chain batch is one stacked state object.

    Implementations must treat batch states as immutable: ``propose_batch``
    and ``select`` return new objects (or fresh arrays) so that the engine
    can keep current/candidate/best batches alive simultaneously.
    """

    @abstractmethod
    def initial_states(self, batch_size: int, rng: np.random.Generator) -> BatchStateT:
        """Produce the stacked initial states of ``batch_size`` chains."""

    @abstractmethod
    def propose_batch(self, states: BatchStateT, rng: np.random.Generator) -> BatchStateT:
        """Propose one neighbouring candidate per chain, stacked."""

    @abstractmethod
    def energies(self, states: BatchStateT) -> np.ndarray:
        """Per-chain objective values as a ``(B,)`` float array."""

    @abstractmethod
    def select(
        self, mask: np.ndarray, accepted: BatchStateT, rejected: BatchStateT
    ) -> BatchStateT:
        """Merge two batches: chain ``b`` takes ``accepted`` where ``mask[b]``."""

    @abstractmethod
    def unstack(self, states: BatchStateT, index: int):
        """Extract chain ``index``'s state as a per-chain object."""


@dataclass
class BatchAnnealingResult(Generic[BatchStateT]):
    """Outcome of one lockstep run of ``B`` chains.

    Per-chain quantities are stored as stacked arrays; :meth:`per_chain`
    unstacks them into the sequential engine's result type.
    """

    best_states: BatchStateT
    best_energies: np.ndarray
    final_states: BatchStateT
    final_energies: np.ndarray
    num_iterations: int
    num_accepted: np.ndarray
    iterations_to_best: np.ndarray
    energy_history: Optional[np.ndarray] = None
    """``(num_records, B)`` energy trajectories when history was recorded
    (one row per ``history_stride`` iterations)."""
    num_resyncs: int = 0
    """Times the fused runner rebuilt its incremental energy caches
    (always ``0`` for the non-fused lockstep runner)."""

    @property
    def batch_size(self) -> int:
        """Number of chains in the batch."""
        return int(self.best_energies.shape[0])

    @property
    def acceptance_rates(self) -> np.ndarray:
        """Per-chain fraction of accepted proposals."""
        if self.num_iterations == 0:
            return np.zeros_like(self.best_energies)
        return self.num_accepted / self.num_iterations

    def chain_history(self, index: int) -> List[float]:
        """Chain ``index``'s energy trajectory (empty when not recorded)."""
        if self.energy_history is None:
            return []
        return self.energy_history[:, index].tolist()

    def per_chain(
        self, problem: BatchAnnealingProblem[BatchStateT]
    ) -> List[AnnealingResult]:
        """Unstack into one :class:`AnnealingResult` per chain."""
        results: List[AnnealingResult] = []
        for index in range(self.batch_size):
            history = self.chain_history(index)
            results.append(
                AnnealingResult(
                    best_state=problem.unstack(self.best_states, index),
                    best_energy=float(self.best_energies[index]),
                    final_state=problem.unstack(self.final_states, index),
                    final_energy=float(self.final_energies[index]),
                    num_iterations=self.num_iterations,
                    num_accepted=int(self.num_accepted[index]),
                    iterations_to_best=int(self.iterations_to_best[index]),
                    energy_history=history,
                )
            )
        return results


def run_scaled_progress_callback(
    progress: Callable[[int, int], None],
    total_iterations: int,
    total_runs: int,
    updates: int = 100,
) -> Callable[[int, object, np.ndarray], None]:
    """Adapt a ``progress(completed, total)`` hook to an engine callback.

    In lockstep execution every chain finishes at the same time, so run
    counts are reported as the completed fraction of the iteration
    budget scaled to ``total_runs``, throttled to roughly ``updates``
    invocations and guaranteed to end at ``(total_runs, total_runs)``.
    """
    stride = max(1, total_iterations // updates)

    def callback(iteration: int, states, energies) -> None:
        done = iteration + 1
        if done % stride == 0 or done == total_iterations:
            progress(total_runs * done // total_iterations, total_runs)

    return callback


class VectorizedAnnealer(Generic[BatchStateT]):
    """Runs ``B`` independent SA chains in lockstep over stacked arrays.

    Shares :class:`~repro.annealing.engine.AnnealingConfig` with the
    sequential engine: the same schedule, acceptance rule and iteration
    budget apply to every chain; only the execution strategy differs.
    """

    def __init__(
        self,
        problem: BatchAnnealingProblem[BatchStateT],
        config: Optional[AnnealingConfig] = None,
    ) -> None:
        self.problem = problem
        self.config = config or AnnealingConfig()

    def run(
        self,
        batch_size: int,
        seed: SeedLike = None,
        initial_states: Optional[BatchStateT] = None,
        callback: Optional[Callable[[int, BatchStateT, np.ndarray], None]] = None,
    ) -> BatchAnnealingResult[BatchStateT]:
        """Anneal all chains and return the stacked batch result.

        Parameters
        ----------
        batch_size:
            Number of chains ``B`` (must match ``initial_states`` when
            that is provided).
        seed:
            One seed drives the whole batch; chains draw from a shared
            generator, so a batch is reproducible from a single seed.
        callback:
            Optional ``callback(iteration, states, energies)`` invoked
            after every iteration with the stacked batch state (the
            batched counterpart of the sequential engine's callback;
            used e.g. for progress reporting on long batches).
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        config = self.config
        problem = self.problem
        rng = as_generator(seed)

        states = (
            initial_states
            if initial_states is not None
            else problem.initial_states(batch_size, rng)
        )
        # An owned copy: problems may hand out views of internal buffers
        # (e.g. piggybacked energy caches) and the loop below updates the
        # array in place.
        energies = np.array(problem.energies(states), dtype=float)
        if energies.shape != (batch_size,):
            raise ValueError(
                f"problem.energies returned shape {energies.shape}, "
                f"expected ({batch_size},)"
            )
        best_states = states
        best_energies = energies.copy()
        iterations_to_best = np.zeros(batch_size, dtype=int)
        accepted_counts = np.zeros(batch_size, dtype=int)
        improved = np.empty(batch_size, dtype=bool)
        stride = config.history_stride
        history = (
            np.empty((config.num_iterations // stride, batch_size))
            if config.record_history
            else None
        )
        # One schedule evaluation per run instead of one per iteration
        # (values are bit-identical to per-iteration calls).
        temperatures = config.schedule.temperatures(config.num_iterations)

        for iteration in range(config.num_iterations):
            temperature = temperatures[iteration]
            candidates = problem.propose_batch(states, rng)
            candidate_energies = np.asarray(problem.energies(candidates), dtype=float)
            delta = candidate_energies - energies
            accept = config.acceptance.accept_batch(delta, temperature, rng)
            if accept.any():
                states = problem.select(accept, candidates, states)
                # In-place merges: no fresh per-iteration arrays for the
                # energy/best-tracking state.
                np.copyto(energies, candidate_energies, where=accept)
                np.add(accepted_counts, accept, out=accepted_counts, casting="unsafe")
                np.less(energies, best_energies, out=improved)
                improved &= accept
                if improved.any():
                    best_states = problem.select(improved, states, best_states)
                    np.copyto(best_energies, energies, where=improved)
                    np.copyto(iterations_to_best, iteration + 1, where=improved)
            done = iteration + 1
            if history is not None and done % stride == 0:
                history[done // stride - 1] = energies
            if callback is not None:
                callback(iteration, states, energies)

        return BatchAnnealingResult(
            best_states=best_states,
            best_energies=best_energies,
            final_states=states,
            final_energies=energies,
            num_iterations=config.num_iterations,
            num_accepted=accepted_counts,
            iterations_to_best=iterations_to_best,
            energy_history=history,
        )


class FusedBatchProblem(ABC, Generic[BatchStateT]):
    """A problem driven by the fused in-place annealing kernel.

    :class:`BatchAnnealingProblem` treats batch states as immutable
    objects, which costs a full candidate-state allocation and several
    merge copies per iteration.  This interface inverts the contract:
    the *problem* owns mutable state buffers (and whatever evaluation
    caches it keeps alongside them), the engine drives them through a
    stage/commit cycle, and proposal randomness is consumed from blocks
    of pre-drawn uniforms rather than per-iteration generator calls.

    Per iteration the engine calls :meth:`propose` (stage one move per
    chain and return the candidate energies), decides acceptance, then
    :meth:`commit` (fold the staged move into the accepted chains, in
    place).  Incremental problems update rank-1 caches in ``commit`` and
    periodically rebuild them in :meth:`resync`.
    """

    @abstractmethod
    def begin(
        self,
        batch_size: int,
        rng: np.random.Generator,
        initial_states: Optional[BatchStateT] = None,
    ) -> np.ndarray:
        """Allocate state buffers and return the live energies array.

        The returned ``(B,)`` float array is *shared*: the engine updates
        it in place on acceptance/resync and the problem may read it
        between calls.  ``initial_states`` (a stacked batch-state object)
        seeds the chains when provided; otherwise the problem samples its
        own initial states from ``rng``.
        """

    @abstractmethod
    def draw_block(self, num_steps: int, rng: np.random.Generator) -> None:
        """Pre-draw proposal randomness for the next ``num_steps`` iterations."""

    @abstractmethod
    def propose(self, step: int) -> np.ndarray:
        """Stage the ``step``-th proposal of the block; return candidate energies."""

    @abstractmethod
    def commit(self, accept: np.ndarray) -> None:
        """Apply the staged proposal to the chains where ``accept`` is set."""

    def resync(self) -> Optional[np.ndarray]:
        """Rebuild evaluation caches from the authoritative state.

        Called every ``resync_interval`` iterations; returns refreshed
        energies (copied into the live buffer by the engine) or ``None``
        when the problem keeps no drifting caches.
        """
        return None

    @abstractmethod
    def make_snapshot(self) -> object:
        """A preallocated copy of the current per-chain states."""

    @abstractmethod
    def update_snapshot(self, snapshot: object, mask: np.ndarray) -> None:
        """Overwrite ``snapshot`` with the current state where ``mask`` is set."""

    @abstractmethod
    def export_snapshot(self, snapshot: object) -> BatchStateT:
        """Convert a snapshot into a stacked batch-state object."""

    @abstractmethod
    def export_states(self) -> BatchStateT:
        """The current states as a stacked batch-state object (a copy)."""

    @abstractmethod
    def current_states(self) -> BatchStateT:
        """A zero-copy view of the current states (for callbacks only)."""

    @abstractmethod
    def unstack(self, states: BatchStateT, index: int):
        """Extract chain ``index``'s state as a per-chain object."""


class MultiFusedBatchProblem(FusedBatchProblem[BatchStateT]):
    """A fused problem whose chains belong to several independent launches.

    The batched dispatch path coalesces many scheduler jobs (one
    same-shape game each) into a single fused kernel launch.  To keep
    each job's result *bit-identical* to a solo
    :meth:`FusedAnnealer.run`, every launch keeps its own generator and
    consumes it in exactly the solo order — initial states first, then
    per block the problem's proposal uniforms followed by the engine's
    acceptance uniforms.  Chains are concatenated along the batch axis
    in launch order, so launch ``j``'s chains occupy one contiguous
    slice of every stacked array.

    Multi problems are driven exclusively through
    :meth:`FusedAnnealer.run_multi`; the single-generator
    :meth:`~FusedBatchProblem.begin` / :meth:`~FusedBatchProblem.draw_block`
    entry points are not used.
    """

    @abstractmethod
    def begin_multi(
        self, launches: Sequence[Tuple[int, np.random.Generator]]
    ) -> np.ndarray:
        """Allocate buffers for all launches and return the live energies.

        ``launches`` is one ``(batch_size, rng)`` pair per launch; each
        launch's initial states are drawn from its own generator exactly
        as a solo :meth:`~FusedBatchProblem.begin` would draw them.
        Returns the concatenated ``(B_total,)`` energies array (shared
        with the engine, like ``begin``).
        """

    @abstractmethod
    def draw_block_multi(
        self, num_steps: int, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Pre-draw proposal *and* acceptance randomness per launch.

        For each launch ``j`` (in order) draws the problem's proposal
        block from ``rngs[j]`` first and the acceptance uniforms second
        — the solo consumption order.  Returns the acceptance uniforms
        concatenated along the chain axis as a ``(num_steps, B_total)``
        array; the engine indexes it exactly like its own block.
        """

    def begin(
        self,
        batch_size: int,
        rng: np.random.Generator,
        initial_states: Optional[BatchStateT] = None,
    ) -> np.ndarray:
        raise NotImplementedError("multi-launch problems are driven via run_multi()")

    def draw_block(self, num_steps: int, rng: np.random.Generator) -> None:
        raise NotImplementedError("multi-launch problems are driven via run_multi()")


class FusedAnnealer(Generic[BatchStateT]):
    """Fused lockstep SA: block-sampled randomness, in-place accept/reject.

    Runs the same Markov chains as :class:`VectorizedAnnealer` — one
    proposal per chain per iteration, Metropolis (or configured)
    acceptance at the scheduled temperature — but drives a
    :class:`FusedBatchProblem` whose state lives in preallocated buffers:

    * the whole temperature trajectory is precomputed as one array;
    * proposal and acceptance uniforms are drawn in blocks of
      ``block_size`` iterations (the problem's block first, then the
      engine's acceptance block, so the stream is a deterministic
      function of the seed);
    * accept/reject, best-state tracking and energy bookkeeping are
      in-place ``np.copyto`` merges on double-buffered arrays — no fresh
      per-iteration state allocations;
    * every ``resync_interval`` iterations the problem may rebuild its
      evaluation caches from the authoritative state, bounding float
      drift of incremental (delta) evaluation.

    The RNG block layout makes this kernel's random stream different
    from :class:`VectorizedAnnealer`'s per-iteration stream: the two
    engines sample identical distributions but are not flip-for-flip
    reproductions of each other.  Within this kernel, however, the
    stream is independent of the problem's evaluation strategy, so delta
    and full evaluation see identical proposals and uniforms.
    """

    def __init__(
        self,
        problem: FusedBatchProblem[BatchStateT],
        config: Optional[AnnealingConfig] = None,
        block_size: int = 128,
        resync_interval: int = 1024,
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if resync_interval < 0:
            raise ValueError(
                f"resync_interval must be >= 0 (0 disables), got {resync_interval}"
            )
        self.problem = problem
        self.config = config or AnnealingConfig()
        self.block_size = block_size
        self.resync_interval = resync_interval

    def run(
        self,
        batch_size: int,
        seed: SeedLike = None,
        initial_states: Optional[BatchStateT] = None,
        callback: Optional[Callable[[int, BatchStateT, np.ndarray], None]] = None,
    ) -> BatchAnnealingResult[BatchStateT]:
        """Anneal all chains and return the stacked batch result.

        Mirrors :meth:`VectorizedAnnealer.run`; ``callback`` receives a
        zero-copy view of the live states and must not mutate or retain
        it across iterations.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        rng = as_generator(seed)
        energies = self.problem.begin(batch_size, rng, initial_states)
        if energies.shape != (batch_size,):
            raise ValueError(
                f"problem.begin returned energies of shape {energies.shape}, "
                f"expected ({batch_size},)"
            )

        def draw(steps: int) -> np.ndarray:
            # The solo RNG stream contract: the problem's proposal block
            # first, the engine's acceptance block second.
            self.problem.draw_block(steps, rng)
            return rng.random((steps, batch_size))

        return self._anneal(batch_size, energies, draw, callback)

    def run_multi(
        self,
        launches: Sequence[Tuple[int, SeedLike]],
        callback: Optional[Callable[[int, BatchStateT, np.ndarray], None]] = None,
    ) -> BatchAnnealingResult[BatchStateT]:
        """Anneal several independent launches as one fused batch.

        ``launches`` is one ``(batch_size, seed)`` pair per launch; the
        problem must be a :class:`MultiFusedBatchProblem`.  Each launch
        owns a generator seeded exactly as :meth:`run` would seed it and
        consumes it in the solo order, so chain ``b`` of launch ``j``
        evolves flip-for-flip identically to the same chain of a solo
        ``run(batch_size_j, seed_j)`` on that launch's problem — the
        fusion only amortises the per-iteration Python/kernel overhead
        across launches.  Results come back as a single stacked
        :class:`BatchAnnealingResult` with launch ``j``'s chains at
        offset ``sum(sizes[:j])``.
        """
        problem = self.problem
        if not isinstance(problem, MultiFusedBatchProblem):
            raise TypeError(
                f"run_multi requires a MultiFusedBatchProblem, got {type(problem).__name__}"
            )
        if not launches:
            raise ValueError("need at least one launch")
        sizes = [int(size) for size, _ in launches]
        if any(size <= 0 for size in sizes):
            raise ValueError(f"launch batch sizes must be positive, got {sizes}")
        batch_size = sum(sizes)
        rngs = [as_generator(seed) for _, seed in launches]
        energies = problem.begin_multi(list(zip(sizes, rngs)))
        if energies.shape != (batch_size,):
            raise ValueError(
                f"problem.begin_multi returned energies of shape {energies.shape}, "
                f"expected ({batch_size},)"
            )

        def draw(steps: int) -> np.ndarray:
            return problem.draw_block_multi(steps, rngs)

        return self._anneal(batch_size, energies, draw, callback)

    def _anneal(
        self,
        batch_size: int,
        energies: np.ndarray,
        draw: Callable[[int], np.ndarray],
        callback: Optional[Callable[[int, BatchStateT, np.ndarray], None]],
    ) -> BatchAnnealingResult[BatchStateT]:
        """The fused accept/commit loop shared by :meth:`run` and :meth:`run_multi`.

        ``draw(steps)`` refills the problem's proposal block and returns
        the ``(steps, batch_size)`` acceptance uniforms.
        """
        config = self.config
        problem = self.problem
        num_iterations = config.num_iterations
        best_snapshot = problem.make_snapshot()
        best_energies = energies.copy()
        iterations_to_best = np.zeros(batch_size, dtype=int)
        accepted_counts = np.zeros(batch_size, dtype=int)
        improved = np.empty(batch_size, dtype=bool)
        stride = config.history_stride
        history = (
            np.empty((num_iterations // stride, batch_size))
            if config.record_history
            else None
        )
        temperatures = config.schedule.temperatures(num_iterations)
        acceptance = config.acceptance
        block_size = min(self.block_size, num_iterations)
        accept_uniforms: Optional[np.ndarray] = None
        num_resyncs = 0

        for iteration in range(num_iterations):
            step = iteration % block_size
            if step == 0:
                steps = min(block_size, num_iterations - iteration)
                accept_uniforms = draw(steps)
            candidate_energies = problem.propose(step)
            delta = candidate_energies - energies
            accept = acceptance.accept_batch_given(
                delta, temperatures[iteration], accept_uniforms[step]
            )
            problem.commit(accept)
            np.copyto(energies, candidate_energies, where=accept)
            np.add(accepted_counts, accept, out=accepted_counts, casting="unsafe")
            np.less(energies, best_energies, out=improved)
            improved &= accept
            if improved.any():
                problem.update_snapshot(best_snapshot, improved)
                np.copyto(best_energies, energies, where=improved)
                np.copyto(iterations_to_best, iteration + 1, where=improved)
            done = iteration + 1
            if (
                self.resync_interval
                and done % self.resync_interval == 0
                and done < num_iterations
            ):
                refreshed = problem.resync()
                num_resyncs += 1
                if refreshed is not None:
                    np.copyto(energies, refreshed)
            if history is not None and done % stride == 0:
                history[done // stride - 1] = energies
            if callback is not None:
                callback(iteration, problem.current_states(), energies)

        return BatchAnnealingResult(
            best_states=problem.export_snapshot(best_snapshot),
            best_energies=best_energies,
            final_states=problem.export_states(),
            final_energies=energies,
            num_iterations=num_iterations,
            num_accepted=accepted_counts,
            iterations_to_best=iterations_to_best,
            energy_history=history,
            num_resyncs=num_resyncs,
        )
