"""Acceptance rules for simulated annealing.

Alg. 1 of the paper accepts an uphill move with probability
``exp(-dE / T)`` — the Metropolis criterion.  The annealing substrate
also offers a greedy rule (T = 0 limit) and a Glauber/heat-bath rule so
the ablation benchmarks can compare acceptance strategies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class AcceptanceRule(ABC):
    """Decides whether to accept a candidate state given the energy change."""

    @abstractmethod
    def accept(self, delta_energy: float, temperature: float, rng: np.random.Generator) -> bool:
        """Return ``True`` to accept a move with energy change ``delta_energy``."""

    def accept_batch(
        self, delta_energies: np.ndarray, temperature: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized acceptance over a batch of energy changes.

        Returns a boolean mask of the same shape as ``delta_energies``.
        The default falls back to the scalar rule chain by chain; the
        built-in rules override it with closed-form array expressions so
        the vectorized annealing engine stays loop-free.
        """
        deltas = np.asarray(delta_energies, dtype=float)
        return np.array(
            [self.accept(float(delta), temperature, rng) for delta in deltas.ravel()]
        ).reshape(deltas.shape)

    def acceptance_probability(self, delta_energy: float, temperature: float) -> float:
        """Probability of accepting the move (used in tests and analysis)."""
        raise NotImplementedError

    def accept_batch_given(
        self, delta_energies: np.ndarray, temperature: float, uniforms: np.ndarray
    ) -> np.ndarray:
        """Vectorized acceptance driven by *pre-drawn* uniform variates.

        The fused annealing kernel draws its acceptance randomness in
        blocks ahead of the iteration loop (one ``U[0, 1)`` value per
        chain per iteration) and hands the block rows to this method, so
        the decision is a pure function of ``(deltas, temperature,
        uniforms)``.  The default compares each uniform against
        :meth:`acceptance_probability`; rules whose probability is not
        defined elementwise must override this.
        """
        deltas = np.asarray(delta_energies, dtype=float)
        probabilities = np.array(
            [
                self.acceptance_probability(float(delta), temperature)
                for delta in deltas.ravel()
            ]
        ).reshape(deltas.shape)
        return uniforms < probabilities


@dataclass(frozen=True)
class MetropolisAcceptance(AcceptanceRule):
    """Accept downhill moves always, uphill with probability ``exp(-dE/T)``."""

    def acceptance_probability(self, delta_energy: float, temperature: float) -> float:
        if delta_energy <= 0:
            return 1.0
        if temperature <= 0:
            return 0.0
        return float(np.exp(-delta_energy / temperature))

    def accept(self, delta_energy: float, temperature: float, rng: np.random.Generator) -> bool:
        if delta_energy <= 0:
            return True
        if temperature <= 0:
            return False
        return bool(rng.random() < np.exp(-delta_energy / temperature))

    def accept_batch(
        self, delta_energies: np.ndarray, temperature: float, rng: np.random.Generator
    ) -> np.ndarray:
        deltas = np.asarray(delta_energies, dtype=float)
        downhill = deltas <= 0
        if temperature <= 0:
            return downhill
        # Clamp downhill (negative) deltas to zero so exp(-delta/T) cannot
        # overflow; those chains accept via the mask regardless.
        probabilities = np.exp(-np.maximum(deltas, 0.0) / temperature)
        return downhill | (rng.random(deltas.shape) < probabilities)

    def accept_batch_given(
        self, delta_energies: np.ndarray, temperature: float, uniforms: np.ndarray
    ) -> np.ndarray:
        deltas = np.asarray(delta_energies, dtype=float)
        downhill = deltas <= 0
        if temperature <= 0:
            return downhill
        probabilities = np.exp(-np.maximum(deltas, 0.0) / temperature)
        return downhill | (uniforms < probabilities)


@dataclass(frozen=True)
class GreedyAcceptance(AcceptanceRule):
    """Accept only non-increasing moves (the zero-temperature limit)."""

    def acceptance_probability(self, delta_energy: float, temperature: float) -> float:
        return 1.0 if delta_energy <= 0 else 0.0

    def accept(self, delta_energy: float, temperature: float, rng: np.random.Generator) -> bool:
        return delta_energy <= 0

    def accept_batch(
        self, delta_energies: np.ndarray, temperature: float, rng: np.random.Generator
    ) -> np.ndarray:
        return np.asarray(delta_energies, dtype=float) <= 0

    def accept_batch_given(
        self, delta_energies: np.ndarray, temperature: float, uniforms: np.ndarray
    ) -> np.ndarray:
        return np.asarray(delta_energies, dtype=float) <= 0


@dataclass(frozen=True)
class GlauberAcceptance(AcceptanceRule):
    """Heat-bath rule: accept with probability ``1 / (1 + exp(dE/T))``."""

    def acceptance_probability(self, delta_energy: float, temperature: float) -> float:
        if temperature <= 0:
            return 1.0 if delta_energy < 0 else (0.5 if delta_energy == 0 else 0.0)
        return float(1.0 / (1.0 + np.exp(delta_energy / temperature)))

    def accept(self, delta_energy: float, temperature: float, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.acceptance_probability(delta_energy, temperature))

    def accept_batch(
        self, delta_energies: np.ndarray, temperature: float, rng: np.random.Generator
    ) -> np.ndarray:
        deltas = np.asarray(delta_energies, dtype=float)
        if temperature <= 0:
            probabilities = np.where(deltas < 0, 1.0, np.where(deltas == 0, 0.5, 0.0))
        else:
            # Clamp the exponent so extreme uphill deltas give probability
            # 0 without overflow warnings.
            probabilities = 1.0 / (1.0 + np.exp(np.minimum(deltas / temperature, 700.0)))
        return rng.random(deltas.shape) < probabilities

    def accept_batch_given(
        self, delta_energies: np.ndarray, temperature: float, uniforms: np.ndarray
    ) -> np.ndarray:
        deltas = np.asarray(delta_energies, dtype=float)
        if temperature <= 0:
            probabilities = np.where(deltas < 0, 1.0, np.where(deltas == 0, 0.5, 0.0))
        else:
            probabilities = 1.0 / (1.0 + np.exp(np.minimum(deltas / temperature, 700.0)))
        return uniforms < probabilities


def make_acceptance_rule(name: str) -> AcceptanceRule:
    """Factory by name: ``"metropolis"``, ``"greedy"`` or ``"glauber"``."""
    rules = {
        "metropolis": MetropolisAcceptance,
        "greedy": GreedyAcceptance,
        "glauber": GlauberAcceptance,
    }
    key = name.strip().lower()
    if key not in rules:
        raise KeyError(f"unknown acceptance rule {name!r}; available: {', '.join(sorted(rules))}")
    return rules[key]()
