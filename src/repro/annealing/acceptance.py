"""Acceptance rules for simulated annealing.

Alg. 1 of the paper accepts an uphill move with probability
``exp(-dE / T)`` — the Metropolis criterion.  The annealing substrate
also offers a greedy rule (T = 0 limit) and a Glauber/heat-bath rule so
the ablation benchmarks can compare acceptance strategies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class AcceptanceRule(ABC):
    """Decides whether to accept a candidate state given the energy change."""

    @abstractmethod
    def accept(self, delta_energy: float, temperature: float, rng: np.random.Generator) -> bool:
        """Return ``True`` to accept a move with energy change ``delta_energy``."""

    def acceptance_probability(self, delta_energy: float, temperature: float) -> float:
        """Probability of accepting the move (used in tests and analysis)."""
        raise NotImplementedError


@dataclass(frozen=True)
class MetropolisAcceptance(AcceptanceRule):
    """Accept downhill moves always, uphill with probability ``exp(-dE/T)``."""

    def acceptance_probability(self, delta_energy: float, temperature: float) -> float:
        if delta_energy <= 0:
            return 1.0
        if temperature <= 0:
            return 0.0
        return float(np.exp(-delta_energy / temperature))

    def accept(self, delta_energy: float, temperature: float, rng: np.random.Generator) -> bool:
        if delta_energy <= 0:
            return True
        if temperature <= 0:
            return False
        return bool(rng.random() < np.exp(-delta_energy / temperature))


@dataclass(frozen=True)
class GreedyAcceptance(AcceptanceRule):
    """Accept only non-increasing moves (the zero-temperature limit)."""

    def acceptance_probability(self, delta_energy: float, temperature: float) -> float:
        return 1.0 if delta_energy <= 0 else 0.0

    def accept(self, delta_energy: float, temperature: float, rng: np.random.Generator) -> bool:
        return delta_energy <= 0


@dataclass(frozen=True)
class GlauberAcceptance(AcceptanceRule):
    """Heat-bath rule: accept with probability ``1 / (1 + exp(dE/T))``."""

    def acceptance_probability(self, delta_energy: float, temperature: float) -> float:
        if temperature <= 0:
            return 1.0 if delta_energy < 0 else (0.5 if delta_energy == 0 else 0.0)
        return float(1.0 / (1.0 + np.exp(delta_energy / temperature)))

    def accept(self, delta_energy: float, temperature: float, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.acceptance_probability(delta_energy, temperature))


def make_acceptance_rule(name: str) -> AcceptanceRule:
    """Factory by name: ``"metropolis"``, ``"greedy"`` or ``"glauber"``."""
    rules = {
        "metropolis": MetropolisAcceptance,
        "greedy": GreedyAcceptance,
        "glauber": GlauberAcceptance,
    }
    key = name.strip().lower()
    if key not in rules:
        raise KeyError(f"unknown acceptance rule {name!r}; available: {', '.join(sorted(rules))}")
    return rules[key]()
