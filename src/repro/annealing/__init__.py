"""Generic simulated-annealing substrate.

Temperature schedules, acceptance rules, a reusable annealing engine and
multi-run batch orchestration.  Both the C-Nash two-phase SA controller
and the S-QUBO baseline annealer are built on these pieces.
"""

from repro.annealing.acceptance import (
    AcceptanceRule,
    GlauberAcceptance,
    GreedyAcceptance,
    MetropolisAcceptance,
    make_acceptance_rule,
)
from repro.annealing.batch import BatchResult, BatchStatistics, run_batch
from repro.annealing.engine import (
    AnnealingConfig,
    AnnealingProblem,
    AnnealingResult,
    SimulatedAnnealer,
)
from repro.annealing.temperature import (
    ConstantSchedule,
    ExponentialSchedule,
    GeometricSchedule,
    LinearSchedule,
    LogarithmicSchedule,
    TemperatureSchedule,
)
from repro.annealing.vectorized import (
    BatchAnnealingProblem,
    BatchAnnealingResult,
    FusedAnnealer,
    FusedBatchProblem,
    VectorizedAnnealer,
)

__all__ = [
    "TemperatureSchedule",
    "GeometricSchedule",
    "LinearSchedule",
    "ExponentialSchedule",
    "LogarithmicSchedule",
    "ConstantSchedule",
    "AcceptanceRule",
    "MetropolisAcceptance",
    "GreedyAcceptance",
    "GlauberAcceptance",
    "make_acceptance_rule",
    "AnnealingProblem",
    "AnnealingConfig",
    "AnnealingResult",
    "SimulatedAnnealer",
    "BatchAnnealingProblem",
    "BatchAnnealingResult",
    "FusedAnnealer",
    "FusedBatchProblem",
    "VectorizedAnnealer",
    "BatchResult",
    "BatchStatistics",
    "run_batch",
]
