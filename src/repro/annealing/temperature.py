"""Temperature schedules for simulated annealing.

The paper's Alg. 1 anneals from ``T_max`` down to ``T_min`` with a decay
function ``T = D(T)``.  This module provides the decay functions used
across the library: geometric (the default, matching the usual hardware
annealer implementation), linear, exponential-in-iteration, and a
logarithmic schedule useful for stress-testing convergence behaviour.

All schedules implement :class:`TemperatureSchedule`, mapping an
iteration index (and the total number of iterations) to a temperature.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class TemperatureSchedule(ABC):
    """Maps an iteration index to an annealing temperature."""

    @abstractmethod
    def temperature(self, iteration: int, num_iterations: int) -> float:
        """Temperature at ``iteration`` out of ``num_iterations`` total."""

    def temperatures(self, num_iterations: int) -> np.ndarray:
        """The full temperature trajectory as an array.

        The annealing engines precompute this once per run instead of
        calling :meth:`temperature` inside the iteration loop, so the
        array must be elementwise bit-identical to the per-iteration
        values.  The default loop guarantees that for any schedule;
        overrides may use closed-form array expressions only when every
        element reproduces the scalar path exactly (transcendental
        functions can differ by an ulp between scalar and array
        evaluation, which is why the geometric/exponential/logarithmic
        schedules keep the default).
        """
        return np.array(
            [self.temperature(step, num_iterations) for step in range(num_iterations)]
        )


def _validate_bounds(initial: float, final: float) -> None:
    if initial <= 0 or final <= 0:
        raise ValueError(f"temperatures must be positive, got initial={initial}, final={final}")
    if final > initial:
        raise ValueError(
            f"final temperature must not exceed initial temperature, got {initial} -> {final}"
        )


@dataclass(frozen=True)
class GeometricSchedule(TemperatureSchedule):
    """Geometric decay ``T_k = T_0 * r^k`` with ``r`` chosen to land on ``final``."""

    initial: float = 10.0
    final: float = 0.01

    def __post_init__(self) -> None:
        _validate_bounds(self.initial, self.final)

    def temperature(self, iteration: int, num_iterations: int) -> float:
        if num_iterations <= 1:
            return self.final
        ratio = (self.final / self.initial) ** (iteration / (num_iterations - 1))
        return float(self.initial * ratio)


@dataclass(frozen=True)
class LinearSchedule(TemperatureSchedule):
    """Linear interpolation from ``initial`` to ``final``."""

    initial: float = 10.0
    final: float = 0.01

    def __post_init__(self) -> None:
        _validate_bounds(self.initial, self.final)

    def temperature(self, iteration: int, num_iterations: int) -> float:
        if num_iterations <= 1:
            return self.final
        fraction = iteration / (num_iterations - 1)
        return float(self.initial + (self.final - self.initial) * fraction)

    def temperatures(self, num_iterations: int) -> np.ndarray:
        if num_iterations <= 1:
            return np.full(num_iterations, self.final)
        fractions = np.arange(num_iterations) / (num_iterations - 1)
        return self.initial + (self.final - self.initial) * fractions


@dataclass(frozen=True)
class ExponentialSchedule(TemperatureSchedule):
    """Exponential decay ``T_k = T_0 * exp(-decay_rate * k / num_iterations)``."""

    initial: float = 10.0
    decay_rate: float = 5.0
    floor: float = 1e-6

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise ValueError(f"initial temperature must be positive, got {self.initial}")
        if self.decay_rate <= 0:
            raise ValueError(f"decay_rate must be positive, got {self.decay_rate}")
        if self.floor <= 0:
            raise ValueError(f"floor must be positive, got {self.floor}")

    def temperature(self, iteration: int, num_iterations: int) -> float:
        if num_iterations <= 0:
            return self.floor
        value = self.initial * np.exp(-self.decay_rate * iteration / num_iterations)
        return float(max(value, self.floor))


@dataclass(frozen=True)
class LogarithmicSchedule(TemperatureSchedule):
    """Classic ``T_k = c / log(k + 2)`` schedule (slow, asymptotically optimal)."""

    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def temperature(self, iteration: int, num_iterations: int) -> float:
        return float(self.scale / np.log(iteration + 2.0))


@dataclass(frozen=True)
class ConstantSchedule(TemperatureSchedule):
    """Constant temperature (used to isolate acceptance-rule behaviour in tests)."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"value must be non-negative, got {self.value}")

    def temperature(self, iteration: int, num_iterations: int) -> float:
        return float(self.value)

    def temperatures(self, num_iterations: int) -> np.ndarray:
        return np.full(num_iterations, float(self.value))
