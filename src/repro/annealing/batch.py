"""Multi-run annealing orchestration.

The paper's evaluation runs each game for 5000 independent SA runs; this
module provides reproducible batched execution with per-run seeds derived
from a single base seed, plus summary statistics over the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Sequence, TypeVar

import numpy as np

from repro.utils.rng import SeedLike, spawn_generators

ResultT = TypeVar("ResultT")


@dataclass
class BatchStatistics:
    """Summary statistics of a scalar metric over a batch of runs."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BatchStatistics":
        """Compute the statistics of ``values`` (must be non-empty)."""
        if len(values) == 0:
            raise ValueError("cannot summarise an empty batch")
        array = np.asarray(values, dtype=float)
        return cls(
            count=int(array.size),
            mean=float(array.mean()),
            std=float(array.std()),
            minimum=float(array.min()),
            maximum=float(array.max()),
            median=float(np.median(array)),
        )


@dataclass
class BatchResult(Generic[ResultT]):
    """All per-run results of a batch plus convenience accessors."""

    results: List[ResultT]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> ResultT:
        return self.results[index]

    def metric(self, extractor: Callable[[ResultT], float]) -> BatchStatistics:
        """Summarise ``extractor(result)`` over all runs."""
        return BatchStatistics.from_values([extractor(result) for result in self.results])

    def fraction(self, predicate: Callable[[ResultT], bool]) -> float:
        """Fraction of runs satisfying ``predicate``."""
        if not self.results:
            return 0.0
        return sum(1 for result in self.results if predicate(result)) / len(self.results)


def run_batch(
    run_fn: Callable[[np.random.Generator, int], ResultT],
    num_runs: int,
    seed: SeedLike = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> BatchResult[ResultT]:
    """Execute ``run_fn`` ``num_runs`` times with independent generators.

    Parameters
    ----------
    run_fn:
        Called as ``run_fn(rng, run_index)``; must be deterministic given
        the generator so the whole batch is reproducible from ``seed``.
    progress:
        Optional ``progress(completed, total)`` hook.
    """
    if num_runs <= 0:
        raise ValueError(f"num_runs must be positive, got {num_runs}")
    generators = spawn_generators(seed, num_runs)
    results: List[ResultT] = []
    for index, rng in enumerate(generators):
        results.append(run_fn(rng, index))
        if progress is not None:
            progress(index + 1, num_runs)
    return BatchResult(results=results)
