"""Generic simulated-annealing engine.

The two-phase SA controller of C-Nash and the S-QUBO baseline annealer
share the same skeleton: propose a neighbour, evaluate the objective,
accept/reject, cool down.  :class:`SimulatedAnnealer` implements that
skeleton over an abstract :class:`AnnealingProblem`, so that the domain
specific parts (state representation, move generation, objective
evaluation — possibly through the hardware model) stay in their own
modules.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, List, Optional, TypeVar

from repro.annealing.acceptance import AcceptanceRule, MetropolisAcceptance
from repro.annealing.temperature import GeometricSchedule, TemperatureSchedule
from repro.utils.rng import SeedLike, as_generator

StateT = TypeVar("StateT")


class AnnealingProblem(ABC, Generic[StateT]):
    """A problem that can be optimised by :class:`SimulatedAnnealer`."""

    @abstractmethod
    def initial_state(self, rng) -> StateT:
        """Produce an initial state."""

    @abstractmethod
    def propose(self, state: StateT, rng) -> StateT:
        """Produce a neighbouring candidate state."""

    @abstractmethod
    def energy(self, state: StateT) -> float:
        """Objective value of a state (lower is better)."""

    def copy_state(self, state: StateT) -> StateT:
        """Copy a state; override when states are mutable."""
        return state


@dataclass
class AnnealingConfig:
    """Shared annealing configuration.

    ``history_stride`` subsamples the recorded energy trajectory: only
    every ``history_stride``-th iteration is kept (1 = every iteration).
    Coarser strides bound history memory on long runs — e.g. recording
    per sweep rather than per flip in the binary QUBO annealer.
    """

    num_iterations: int = 1000
    schedule: TemperatureSchedule = field(
        default_factory=lambda: GeometricSchedule(initial=5.0, final=0.01)
    )
    acceptance: AcceptanceRule = field(default_factory=MetropolisAcceptance)
    record_history: bool = False
    history_stride: int = 1

    def __post_init__(self) -> None:
        if self.num_iterations <= 0:
            raise ValueError(f"num_iterations must be positive, got {self.num_iterations}")
        if self.history_stride <= 0:
            raise ValueError(f"history_stride must be positive, got {self.history_stride}")


@dataclass
class AnnealingResult(Generic[StateT]):
    """Outcome of one annealing run."""

    best_state: StateT
    best_energy: float
    final_state: StateT
    final_energy: float
    num_iterations: int
    num_accepted: int
    iterations_to_best: int
    energy_history: List[float] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposals that were accepted."""
        if self.num_iterations == 0:
            return 0.0
        return self.num_accepted / self.num_iterations


class SimulatedAnnealer(Generic[StateT]):
    """Runs simulated annealing over an :class:`AnnealingProblem`."""

    def __init__(self, problem: AnnealingProblem[StateT], config: Optional[AnnealingConfig] = None):
        self.problem = problem
        self.config = config or AnnealingConfig()

    def run(
        self,
        seed: SeedLike = None,
        initial_state: Optional[StateT] = None,
        callback: Optional[Callable[[int, StateT, float], None]] = None,
    ) -> AnnealingResult[StateT]:
        """Execute one annealing run.

        Parameters
        ----------
        callback:
            Optional function called as ``callback(iteration, state, energy)``
            after every iteration (used by the experiments to record
            iterations-to-solution without re-running).
        """
        config = self.config
        rng = as_generator(seed)
        state = initial_state if initial_state is not None else self.problem.initial_state(rng)
        state = self.problem.copy_state(state)
        energy = self.problem.energy(state)
        best_state = self.problem.copy_state(state)
        best_energy = energy
        iterations_to_best = 0
        accepted = 0
        history: List[float] = []
        # The whole cooling trajectory is precomputed once; the values are
        # bit-identical to per-iteration schedule calls (and shared with
        # the vectorized engines, which precompute the same array).
        temperatures = config.schedule.temperatures(config.num_iterations)

        for iteration in range(config.num_iterations):
            temperature = temperatures[iteration]
            candidate = self.problem.propose(state, rng)
            candidate_energy = self.problem.energy(candidate)
            delta = candidate_energy - energy
            if config.acceptance.accept(delta, temperature, rng):
                state = candidate
                energy = candidate_energy
                accepted += 1
                if energy < best_energy:
                    best_energy = energy
                    best_state = self.problem.copy_state(state)
                    iterations_to_best = iteration + 1
            if config.record_history and (iteration + 1) % config.history_stride == 0:
                history.append(energy)
            if callback is not None:
                callback(iteration, state, energy)

        return AnnealingResult(
            best_state=best_state,
            best_energy=float(best_energy),
            final_state=state,
            final_energy=float(energy),
            num_iterations=config.num_iterations,
            num_accepted=accepted,
            iterations_to_best=iterations_to_best,
            energy_history=history,
        )
