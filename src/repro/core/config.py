"""Configuration of the C-Nash solver."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.annealing.acceptance import (
    AcceptanceRule,
    GlauberAcceptance,
    GreedyAcceptance,
    MetropolisAcceptance,
)
from repro.annealing.temperature import GeometricSchedule, TemperatureSchedule

#: Built-in acceptance rules reconstructable from their class name.
ACCEPTANCE_REGISTRY = {
    cls.__name__: cls for cls in (MetropolisAcceptance, GreedyAcceptance, GlauberAcceptance)
}


def acceptance_to_dict(rule: AcceptanceRule) -> Dict[str, Any]:
    """Canonical JSON form of a (dataclass) acceptance rule."""
    name = type(rule).__name__
    if name not in ACCEPTANCE_REGISTRY:
        raise ValueError(
            f"acceptance rule {name!r} is not serialisable; "
            f"supported: {', '.join(sorted(ACCEPTANCE_REGISTRY))}"
        )
    params = {
        f.name: getattr(rule, f.name) for f in dataclasses.fields(rule)  # type: ignore[arg-type]
    }
    return {"name": name, "params": params}


def acceptance_from_dict(data: Dict[str, Any]) -> AcceptanceRule:
    """Inverse of :func:`acceptance_to_dict`."""
    name = data["name"]
    if name not in ACCEPTANCE_REGISTRY:
        raise ValueError(f"unknown acceptance rule {name!r}")
    return ACCEPTANCE_REGISTRY[name](**data.get("params", {}))


@dataclass(frozen=True)
class CNashConfig:
    """Solver configuration.

    Parameters
    ----------
    num_intervals:
        Strategy quantisation ``I`` (probabilities live on a ``1/I``
        grid).  The paper's mapping example uses ``I = 4``; the default
        of 8 resolves the mixed equilibria of all three benchmark games.
    num_iterations:
        SA iterations per run (the paper uses 10 000 / 15 000 / 50 000
        for the three games; the default is sized for the default grid).
    initial_temperature / final_temperature:
        The ``T_max`` / ``T_min`` of Alg. 1, in units of the objective.
    use_hardware:
        Evaluate the objective through the FeFET bi-crossbar model
        (device variability, read noise, ADC and WTA non-idealities)
        instead of exact floating point.
    cells_per_element:
        ``t`` for the hardware mapping (0 = automatic).
    adc_bits:
        ADC resolution of the hardware datapath.
    epsilon:
        Equilibrium tolerance used when classifying the solver output;
        when ``None`` a tolerance matched to the quantisation step and
        payoff scale is derived automatically.
    move_both_players:
        Whether an SA move perturbs both players simultaneously.
    pure_start_bias:
        Probability that a run starts from a random pure strategy pair
        rather than a random mixed one.
    record_history:
        Record the objective trajectory of each run (memory heavy for
        long runs).
    execution:
        Batch execution strategy for :meth:`CNashSolver.solve_batch`:
        ``"vectorized"`` (default) runs all SA chains in lockstep as
        stacked array operations, ``"sequential"`` runs them one at a
        time (the reference implementation).  Both sample the same move
        and acceptance distributions; single ``solve`` calls always use
        the sequential engine.
    evaluation:
        Candidate-energy strategy for the vectorized execution path:
        ``"delta"`` (default) computes each proposal's objective through
        O(n+m) rank-1 cache updates on the fused kernel wherever the
        evaluator supports it (the exact/ideal evaluator does), with a
        periodic full re-sync bounding float drift; ``"full"``
        re-evaluates the complete MAX-QUBO objective for every proposal.
        Both consume identical randomness on the fused kernel, so for
        exactly representable payoffs they produce identical
        accept/reject sequences and equilibria.  Evaluators without
        incremental support — the hardware evaluator (physical two-phase
        reads) and custom evaluators — always perform full evaluations
        regardless of this knob, as do ``move_both_players`` runs and
        the sequential engine.

        Note that *both* modes run on the fused kernel when the
        evaluator supports it, whose block-sampled random stream differs
        from the earlier per-iteration vectorized engine: seeded
        ``execution="vectorized"`` batches therefore sample different
        (identically distributed) runs than releases predating this
        knob, and ``evaluation="full"`` is *not* a compatibility mode
        for their exact numbers.  ``execution="sequential"`` remains the
        stream-stable reference.
    """

    num_intervals: int = 8
    num_iterations: int = 5000
    initial_temperature: float = 1.0
    final_temperature: float = 1e-3
    use_hardware: bool = False
    cells_per_element: int = 0
    adc_bits: int = 10
    epsilon: Optional[float] = None
    move_both_players: bool = False
    pure_start_bias: float = 0.5
    record_history: bool = False
    execution: str = "vectorized"
    evaluation: str = "delta"
    acceptance: AcceptanceRule = field(default_factory=MetropolisAcceptance)

    #: Supported batch execution strategies.
    EXECUTION_MODES = ("vectorized", "sequential")

    #: Supported candidate-energy evaluation strategies.
    EVALUATION_MODES = ("delta", "full")

    def __post_init__(self) -> None:
        if self.num_intervals < 1:
            raise ValueError(f"num_intervals must be >= 1, got {self.num_intervals}")
        if self.num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1, got {self.num_iterations}")
        if self.initial_temperature <= 0 or self.final_temperature <= 0:
            raise ValueError("temperatures must be positive")
        if self.final_temperature > self.initial_temperature:
            raise ValueError("final_temperature must not exceed initial_temperature")
        if not (0.0 <= self.pure_start_bias <= 1.0):
            raise ValueError(f"pure_start_bias must be in [0, 1], got {self.pure_start_bias}")
        if self.epsilon is not None and self.epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {self.epsilon}")
        if self.adc_bits < 1:
            raise ValueError(f"adc_bits must be >= 1, got {self.adc_bits}")
        if self.execution not in self.EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {self.EXECUTION_MODES}, got {self.execution!r}"
            )
        if self.evaluation not in self.EVALUATION_MODES:
            raise ValueError(
                f"evaluation must be one of {self.EVALUATION_MODES}, got {self.evaluation!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form of the configuration (inverse of :meth:`from_dict`).

        This is the wire representation used by the service layer and the
        unified backend API; its keys are part of the request-fingerprint
        contract, so adding a field to the config means extending this
        dict (and bumping any persisted caches).
        """
        return {
            "num_intervals": self.num_intervals,
            "num_iterations": self.num_iterations,
            "initial_temperature": self.initial_temperature,
            "final_temperature": self.final_temperature,
            "use_hardware": self.use_hardware,
            "cells_per_element": self.cells_per_element,
            "adc_bits": self.adc_bits,
            "epsilon": self.epsilon,
            "move_both_players": self.move_both_players,
            "pure_start_bias": self.pure_start_bias,
            "record_history": self.record_history,
            "execution": self.execution,
            "evaluation": self.evaluation,
            "acceptance": acceptance_to_dict(self.acceptance),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CNashConfig":
        """Reconstruct a configuration from :meth:`to_dict` output."""
        payload = dict(data)
        payload["acceptance"] = acceptance_from_dict(payload["acceptance"])
        return cls(**payload)

    def schedule(self) -> TemperatureSchedule:
        """The temperature schedule implied by the configured bounds."""
        return GeometricSchedule(initial=self.initial_temperature, final=self.final_temperature)

    def effective_epsilon(self, payoff_scale: float) -> float:
        """The equilibrium tolerance to use for a game with the given payoff scale.

        Quantising probabilities to ``1/I`` perturbs expected payoffs by
        at most roughly ``payoff_scale / I`` per player, so the automatic
        tolerance scales with both.
        """
        if self.epsilon is not None:
            return self.epsilon
        if payoff_scale <= 0:
            payoff_scale = 1.0
        return 1.5 * payoff_scale / self.num_intervals


#: Paper-scale iteration counts for the three benchmark games (Sec. 4.2).
PAPER_ITERATIONS = {
    "Battle of the Sexes": 10_000,
    "Bird Game": 15_000,
    "Modified Prisoner's Dilemma (8 actions)": 50_000,
}

#: Number of SA runs per game used in the paper's evaluation.
PAPER_NUM_RUNS = 5000
