"""Quantized strategy pairs and the SA move generator.

The C-Nash hardware represents each player's mixed strategy as integer
interval counts: action ``i`` of the row player is played with
probability ``counts[i] / I``, with the counts summing to ``I``.  The SA
logic (Alg. 1) explores this grid by randomly moving one interval of
probability mass from one action to another, which preserves the simplex
constraint by construction ("satisfied by circuits" in the paper's
words).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.games.equilibrium import StrategyProfile
from repro.hardware.mapping import StrategyQuantizer
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class QuantizedStrategyPair:
    """A pair of quantised strategies stored as interval counts.

    Attributes
    ----------
    p_counts, q_counts:
        Integer arrays summing to ``num_intervals`` for the row and
        column players respectively.
    num_intervals:
        The quantisation ``I``.
    """

    p_counts: np.ndarray
    q_counts: np.ndarray
    num_intervals: int

    def __post_init__(self) -> None:
        p = np.asarray(self.p_counts, dtype=int)
        q = np.asarray(self.q_counts, dtype=int)
        if self.num_intervals < 1:
            raise ValueError(f"num_intervals must be >= 1, got {self.num_intervals}")
        for name, counts in (("p_counts", p), ("q_counts", q)):
            if counts.ndim != 1 or counts.size == 0:
                raise ValueError(f"{name} must be a non-empty 1-D array")
            if np.any(counts < 0):
                raise ValueError(f"{name} must be non-negative, got {counts}")
            if counts.sum() != self.num_intervals:
                raise ValueError(
                    f"{name} must sum to {self.num_intervals}, got {int(counts.sum())}"
                )
        object.__setattr__(self, "p_counts", p)
        object.__setattr__(self, "q_counts", q)

    @property
    def p(self) -> np.ndarray:
        """Row player's probabilities."""
        return self.p_counts.astype(float) / self.num_intervals

    @property
    def q(self) -> np.ndarray:
        """Column player's probabilities."""
        return self.q_counts.astype(float) / self.num_intervals

    def to_profile(self) -> StrategyProfile:
        """Convert to a :class:`~repro.games.equilibrium.StrategyProfile`."""
        return StrategyProfile(self.p, self.q)

    def is_pure(self) -> bool:
        """True when both players put all intervals on a single action."""
        return bool(self.p_counts.max() == self.num_intervals and self.q_counts.max() == self.num_intervals)

    def key(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Hashable representation (used to de-duplicate visited states)."""
        return tuple(int(c) for c in self.p_counts), tuple(int(c) for c in self.q_counts)

    @classmethod
    def from_probabilities(
        cls, p: np.ndarray, q: np.ndarray, num_intervals: int
    ) -> "QuantizedStrategyPair":
        """Quantise a pair of probability vectors onto the grid."""
        quantizer = StrategyQuantizer(num_intervals)
        return cls(
            p_counts=quantizer.to_counts(p),
            q_counts=quantizer.to_counts(q),
            num_intervals=num_intervals,
        )

    @classmethod
    def uniform(cls, num_row_actions: int, num_col_actions: int, num_intervals: int) -> "QuantizedStrategyPair":
        """The (quantised) uniform strategy pair."""
        quantizer = StrategyQuantizer(num_intervals)
        p = np.full(num_row_actions, 1.0 / num_row_actions)
        q = np.full(num_col_actions, 1.0 / num_col_actions)
        return cls(quantizer.to_counts(p), quantizer.to_counts(q), num_intervals)


class StrategyMoveGenerator:
    """Generates random neighbouring strategy pairs for the SA search.

    A move picks one player (or both, per ``move_both_players``) and
    transfers one interval of probability mass from a randomly chosen
    donor action (with at least one interval) to a different randomly
    chosen receiver action.  Moves therefore always stay on the simplex
    grid.
    """

    def __init__(self, move_both_players: bool = False):
        self.move_both_players = move_both_players

    @staticmethod
    def _transfer(counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        result = counts.copy()
        if result.size < 2:
            return result
        donors = np.flatnonzero(result > 0)
        donor = int(rng.choice(donors))
        receiver = int(rng.integers(result.size - 1))
        if receiver >= donor:
            receiver += 1
        result[donor] -= 1
        result[receiver] += 1
        return result

    def propose(
        self, state: QuantizedStrategyPair, rng: np.random.Generator
    ) -> QuantizedStrategyPair:
        """Return a neighbouring strategy pair."""
        p_counts = state.p_counts
        q_counts = state.q_counts
        if self.move_both_players:
            p_counts = self._transfer(p_counts, rng)
            q_counts = self._transfer(q_counts, rng)
        else:
            if rng.random() < 0.5:
                p_counts = self._transfer(p_counts, rng)
            else:
                q_counts = self._transfer(q_counts, rng)
        return QuantizedStrategyPair(p_counts, q_counts, state.num_intervals)

    def random_state(
        self,
        num_row_actions: int,
        num_col_actions: int,
        num_intervals: int,
        rng: np.random.Generator,
        pure_bias: float = 0.5,
    ) -> QuantizedStrategyPair:
        """Generate a random initial strategy pair.

        With probability ``pure_bias`` each player starts from a random
        pure strategy; otherwise from a random point of the simplex grid
        (multinomial over actions).  Mixing both kinds of starts helps
        the annealer reach both pure and mixed equilibria.
        """
        if not (0.0 <= pure_bias <= 1.0):
            raise ValueError(f"pure_bias must be in [0, 1], got {pure_bias}")

        def sample(num_actions: int) -> np.ndarray:
            if rng.random() < pure_bias:
                counts = np.zeros(num_actions, dtype=int)
                counts[int(rng.integers(num_actions))] = num_intervals
                return counts
            return rng.multinomial(num_intervals, np.full(num_actions, 1.0 / num_actions))

        return QuantizedStrategyPair(
            sample(num_row_actions), sample(num_col_actions), num_intervals
        )
