"""Quantized strategy pairs and the SA move generator.

The C-Nash hardware represents each player's mixed strategy as integer
interval counts: action ``i`` of the row player is played with
probability ``counts[i] / I``, with the counts summing to ``I``.  The SA
logic (Alg. 1) explores this grid by randomly moving one interval of
probability mass from one action to another, which preserves the simplex
constraint by construction ("satisfied by circuits" in the paper's
words).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.games.equilibrium import StrategyProfile
from repro.hardware.mapping import StrategyQuantizer
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class QuantizedStrategyPair:
    """A pair of quantised strategies stored as interval counts.

    Attributes
    ----------
    p_counts, q_counts:
        Integer arrays summing to ``num_intervals`` for the row and
        column players respectively.
    num_intervals:
        The quantisation ``I``.
    """

    p_counts: np.ndarray
    q_counts: np.ndarray
    num_intervals: int

    def __post_init__(self) -> None:
        p = np.asarray(self.p_counts, dtype=int)
        q = np.asarray(self.q_counts, dtype=int)
        if self.num_intervals < 1:
            raise ValueError(f"num_intervals must be >= 1, got {self.num_intervals}")
        for name, counts in (("p_counts", p), ("q_counts", q)):
            if counts.ndim != 1 or counts.size == 0:
                raise ValueError(f"{name} must be a non-empty 1-D array")
            if np.any(counts < 0):
                raise ValueError(f"{name} must be non-negative, got {counts}")
            if counts.sum() != self.num_intervals:
                raise ValueError(
                    f"{name} must sum to {self.num_intervals}, got {int(counts.sum())}"
                )
        object.__setattr__(self, "p_counts", p)
        object.__setattr__(self, "q_counts", q)

    @property
    def p(self) -> np.ndarray:
        """Row player's probabilities."""
        return self.p_counts.astype(float) / self.num_intervals

    @property
    def q(self) -> np.ndarray:
        """Column player's probabilities."""
        return self.q_counts.astype(float) / self.num_intervals

    def to_profile(self) -> StrategyProfile:
        """Convert to a :class:`~repro.games.equilibrium.StrategyProfile`.

        Grid states are probability vectors by construction (counts are
        non-negative and sum to the interval total), so the profile is
        built through the validation-free trusted constructor.
        """
        return StrategyProfile.trusted(self.p, self.q)

    def is_pure(self) -> bool:
        """True when both players put all intervals on a single action."""
        return bool(self.p_counts.max() == self.num_intervals and self.q_counts.max() == self.num_intervals)

    def key(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Hashable representation (used to de-duplicate visited states)."""
        return tuple(int(c) for c in self.p_counts), tuple(int(c) for c in self.q_counts)

    @classmethod
    def from_probabilities(
        cls, p: np.ndarray, q: np.ndarray, num_intervals: int
    ) -> "QuantizedStrategyPair":
        """Quantise a pair of probability vectors onto the grid."""
        quantizer = StrategyQuantizer(num_intervals)
        return cls(
            p_counts=quantizer.to_counts(p),
            q_counts=quantizer.to_counts(q),
            num_intervals=num_intervals,
        )

    @classmethod
    def uniform(cls, num_row_actions: int, num_col_actions: int, num_intervals: int) -> "QuantizedStrategyPair":
        """The (quantised) uniform strategy pair."""
        quantizer = StrategyQuantizer(num_intervals)
        p = np.full(num_row_actions, 1.0 / num_row_actions)
        q = np.full(num_col_actions, 1.0 / num_col_actions)
        return cls(quantizer.to_counts(p), quantizer.to_counts(q), num_intervals)


def _batched_transfer(
    counts: np.ndarray, move_mask: np.ndarray, rng: np.random.Generator
) -> None:
    """Apply one interval-transfer move in place to the masked rows of ``counts``.

    For every chain a donor action is drawn uniformly from the actions
    with at least one interval and a receiver uniformly from the other
    actions — the same distribution as the scalar
    :meth:`StrategyMoveGenerator._transfer`, but drawn for the whole
    ``(B, k)`` batch at once.  Draws are made for all chains whenever at
    least one is masked in (and skipped entirely otherwise), so the
    number of values consumed from ``rng`` depends on the mask — callers
    must not rely on a fixed per-call draw count.
    """
    batch_size, num_actions = counts.shape
    if num_actions < 2 or not move_mask.any():
        return
    positive = counts > 0
    num_positive = positive.sum(axis=1)
    # Pick the j-th positive action, j uniform in [0, num_positive).
    pick = np.minimum(
        (rng.random(batch_size) * num_positive).astype(int), num_positive - 1
    )
    donor = np.argmax(np.cumsum(positive, axis=1) > pick[:, None], axis=1)
    receiver = rng.integers(0, num_actions - 1, size=batch_size)
    receiver += receiver >= donor
    rows = np.flatnonzero(move_mask)
    counts[rows, donor[rows]] -= 1
    counts[rows, receiver[rows]] += 1


@dataclass
class TransferMoveBatch:
    """One structured interval-transfer move per chain.

    Instead of materialising candidate count arrays, the fused annealing
    kernel represents each chain's proposal as *(player, from-action,
    to-action)*: the moving player transfers one interval of probability
    mass from ``source`` to ``target``.  Chains are grouped by moving
    player so evaluators can apply the two rank-1 update families with
    one gather each.  Chains whose chosen player has fewer than two
    actions appear in neither group — their proposal is the identity
    move (matching :func:`_batched_transfer`, which skips such players).
    """

    #: Chain indices whose *row* player moves, with per-entry actions.
    p_rows: np.ndarray
    p_source: np.ndarray
    p_target: np.ndarray
    #: Chain indices whose *column* player moves, with per-entry actions.
    q_rows: np.ndarray
    q_source: np.ndarray
    q_target: np.ndarray

    def apply(
        self,
        p_counts: np.ndarray,
        q_counts: np.ndarray,
        accept: Optional[np.ndarray] = None,
    ) -> None:
        """Apply the moves in place, optionally only where ``accept`` is set."""
        for rows, source, target, counts in (
            (self.p_rows, self.p_source, self.p_target, p_counts),
            (self.q_rows, self.q_source, self.q_target, q_counts),
        ):
            if accept is not None:
                keep = accept[rows]
                rows, source, target = rows[keep], source[keep], target[keep]
            if rows.size:
                counts[rows, source] -= 1
                counts[rows, target] += 1


_EMPTY_INDEX = np.empty(0, dtype=np.int64)


def _pick_transfer(
    counts: np.ndarray, rows: np.ndarray, u_donor: np.ndarray, u_receiver: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Donor/receiver actions for the chains in ``rows``, from uniforms.

    Samples the same distribution as :func:`_batched_transfer` — donor
    uniform over the actions holding at least one interval, receiver
    uniform over the remaining actions — but from pre-drawn ``U[0, 1)``
    variates instead of fresh generator calls, so a whole block of
    iterations can share one draw.
    """
    num_actions = counts.shape[1]
    if num_actions < 2 or rows.size == 0:
        return _EMPTY_INDEX, _EMPTY_INDEX, _EMPTY_INDEX
    sub = counts[rows]
    positive = sub > 0
    num_positive = positive.sum(axis=1)
    pick = np.minimum(
        (u_donor[rows] * num_positive).astype(np.int64), num_positive - 1
    )
    source = np.argmax(np.cumsum(positive, axis=1) > pick[:, None], axis=1)
    target = (u_receiver[rows] * (num_actions - 1)).astype(np.int64)
    np.minimum(target, num_actions - 2, out=target)
    target += target >= source
    return rows, source, target


def sample_transfer_moves(
    p_counts: np.ndarray,
    q_counts: np.ndarray,
    u_player: np.ndarray,
    u_donor: np.ndarray,
    u_receiver: np.ndarray,
) -> TransferMoveBatch:
    """One structured SA move per chain from three rows of block uniforms.

    Each chain perturbs its row player when ``u_player < 0.5`` and its
    column player otherwise; the move transfers a single interval of
    probability mass between two actions of that player (the Alg.-1
    neighbourhood, identical in distribution to
    :meth:`BatchedStrategyState.transfer_moves` with one-player moves).
    """
    move_p = u_player < 0.5
    p_rows, p_source, p_target = _pick_transfer(
        p_counts, np.flatnonzero(move_p), u_donor, u_receiver
    )
    q_rows, q_source, q_target = _pick_transfer(
        q_counts, np.flatnonzero(~move_p), u_donor, u_receiver
    )
    return TransferMoveBatch(p_rows, p_source, p_target, q_rows, q_source, q_target)


@dataclass(frozen=True)
class BatchedStrategyState:
    """A stacked batch of quantised strategy pairs.

    The chain-parallel execution engine keeps all ``B`` SA chains in one
    object: ``p_counts`` is a ``(B, n)`` integer array (each row summing
    to ``num_intervals``) and ``q_counts`` a ``(B, m)`` array.  Unlike
    :class:`QuantizedStrategyPair` there is no per-construction
    revalidation — the transfer moves preserve the simplex constraint by
    construction, and hot-loop allocations stay O(B) array ops.
    """

    p_counts: np.ndarray
    q_counts: np.ndarray
    num_intervals: int

    @property
    def batch_size(self) -> int:
        """Number of stacked chains ``B``."""
        return int(self.p_counts.shape[0])

    @property
    def p(self) -> np.ndarray:
        """Row-player probabilities, shape ``(B, n)``."""
        return self.p_counts.astype(float) / self.num_intervals

    @property
    def q(self) -> np.ndarray:
        """Column-player probabilities, shape ``(B, m)``."""
        return self.q_counts.astype(float) / self.num_intervals

    def state(self, index: int) -> QuantizedStrategyPair:
        """Chain ``index``'s strategy pair as a validated scalar state."""
        return QuantizedStrategyPair(
            self.p_counts[index].copy(), self.q_counts[index].copy(), self.num_intervals
        )

    def validate(self) -> "BatchedStrategyState":
        """Check the stacked simplex constraints (not used in the hot loop)."""
        for name, counts in (("p_counts", self.p_counts), ("q_counts", self.q_counts)):
            if counts.ndim != 2 or counts.shape[1] == 0:
                raise ValueError(f"{name} must be a non-empty 2-D array, got {counts.shape}")
            if np.any(counts < 0):
                raise ValueError(f"{name} must be non-negative")
            if np.any(counts.sum(axis=1) != self.num_intervals):
                raise ValueError(f"every {name} row must sum to {self.num_intervals}")
        if self.p_counts.shape[0] != self.q_counts.shape[0]:
            raise ValueError(
                f"p_counts and q_counts disagree on batch size: "
                f"{self.p_counts.shape[0]} vs {self.q_counts.shape[0]}"
            )
        return self

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        batch_size: int,
        num_row_actions: int,
        num_col_actions: int,
        num_intervals: int,
        rng: np.random.Generator,
        pure_bias: float = 0.5,
    ) -> "BatchedStrategyState":
        """Sample ``batch_size`` independent initial strategy pairs.

        Per chain and player: with probability ``pure_bias`` a random
        pure strategy, otherwise a multinomial draw over the simplex grid
        — the batched counterpart of
        :meth:`StrategyMoveGenerator.random_state`.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if not (0.0 <= pure_bias <= 1.0):
            raise ValueError(f"pure_bias must be in [0, 1], got {pure_bias}")

        def sample(num_actions: int) -> np.ndarray:
            pure = rng.random(batch_size) < pure_bias
            mixed = rng.multinomial(
                num_intervals, np.full(num_actions, 1.0 / num_actions), size=batch_size
            )
            pure_counts = np.zeros((batch_size, num_actions), dtype=int)
            pure_counts[
                np.arange(batch_size), rng.integers(num_actions, size=batch_size)
            ] = num_intervals
            return np.where(pure[:, None], pure_counts, mixed)

        return cls(sample(num_row_actions), sample(num_col_actions), num_intervals)

    @classmethod
    def from_pairs(cls, pairs: Sequence[QuantizedStrategyPair]) -> "BatchedStrategyState":
        """Stack scalar strategy pairs (all with the same quantisation)."""
        if len(pairs) == 0:
            raise ValueError("cannot stack an empty sequence of strategy pairs")
        intervals = pairs[0].num_intervals
        if any(pair.num_intervals != intervals for pair in pairs):
            raise ValueError("all pairs must share the same num_intervals")
        return cls(
            np.stack([pair.p_counts for pair in pairs]),
            np.stack([pair.q_counts for pair in pairs]),
            intervals,
        )

    @classmethod
    def broadcast(cls, pair: QuantizedStrategyPair, batch_size: int) -> "BatchedStrategyState":
        """Replicate one strategy pair across ``batch_size`` chains."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return cls(
            np.tile(pair.p_counts, (batch_size, 1)),
            np.tile(pair.q_counts, (batch_size, 1)),
            pair.num_intervals,
        )

    # ------------------------------------------------------------------
    # Moves and merging
    # ------------------------------------------------------------------
    def transfer_moves(
        self, rng: np.random.Generator, move_both_players: bool = False
    ) -> "BatchedStrategyState":
        """One SA move per chain: the batched :meth:`StrategyMoveGenerator.propose`.

        Each chain either perturbs one randomly chosen player (default)
        or both players, transferring a single interval of probability
        mass between actions; the result is a new stacked state.
        """
        p_counts = self.p_counts.copy()
        q_counts = self.q_counts.copy()
        if move_both_players:
            move_p = move_q = np.ones(self.batch_size, dtype=bool)
        else:
            move_p = rng.random(self.batch_size) < 0.5
            move_q = ~move_p
        _batched_transfer(p_counts, move_p, rng)
        _batched_transfer(q_counts, move_q, rng)
        return BatchedStrategyState(p_counts, q_counts, self.num_intervals)

    @staticmethod
    def where(
        mask: np.ndarray, accepted: "BatchedStrategyState", rejected: "BatchedStrategyState"
    ) -> "BatchedStrategyState":
        """Per-chain merge: take ``accepted`` where ``mask``, else ``rejected``."""
        if accepted.num_intervals != rejected.num_intervals:
            raise ValueError("cannot merge batches with different num_intervals")
        return BatchedStrategyState(
            np.where(mask[:, None], accepted.p_counts, rejected.p_counts),
            np.where(mask[:, None], accepted.q_counts, rejected.q_counts),
            accepted.num_intervals,
        )


class StrategyMoveGenerator:
    """Generates random neighbouring strategy pairs for the SA search.

    A move picks one player (or both, per ``move_both_players``) and
    transfers one interval of probability mass from a randomly chosen
    donor action (with at least one interval) to a different randomly
    chosen receiver action.  Moves therefore always stay on the simplex
    grid.
    """

    def __init__(self, move_both_players: bool = False):
        self.move_both_players = move_both_players

    @staticmethod
    def _transfer(counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        result = counts.copy()
        if result.size < 2:
            return result
        donors = np.flatnonzero(result > 0)
        donor = int(rng.choice(donors))
        receiver = int(rng.integers(result.size - 1))
        if receiver >= donor:
            receiver += 1
        result[donor] -= 1
        result[receiver] += 1
        return result

    def propose(
        self, state: QuantizedStrategyPair, rng: np.random.Generator
    ) -> QuantizedStrategyPair:
        """Return a neighbouring strategy pair."""
        p_counts = state.p_counts
        q_counts = state.q_counts
        if self.move_both_players:
            p_counts = self._transfer(p_counts, rng)
            q_counts = self._transfer(q_counts, rng)
        else:
            if rng.random() < 0.5:
                p_counts = self._transfer(p_counts, rng)
            else:
                q_counts = self._transfer(q_counts, rng)
        return QuantizedStrategyPair(p_counts, q_counts, state.num_intervals)

    def random_state(
        self,
        num_row_actions: int,
        num_col_actions: int,
        num_intervals: int,
        rng: np.random.Generator,
        pure_bias: float = 0.5,
    ) -> QuantizedStrategyPair:
        """Generate a random initial strategy pair.

        With probability ``pure_bias`` each player starts from a random
        pure strategy; otherwise from a random point of the simplex grid
        (multinomial over actions).  Mixing both kinds of starts helps
        the annealer reach both pure and mixed equilibria.
        """
        if not (0.0 <= pure_bias <= 1.0):
            raise ValueError(f"pure_bias must be in [0, 1], got {pure_bias}")

        def sample(num_actions: int) -> np.ndarray:
            if rng.random() < pure_bias:
                counts = np.zeros(num_actions, dtype=int)
                counts[int(rng.integers(num_actions))] = num_intervals
                return counts
            return rng.multinomial(num_intervals, np.full(num_actions, 1.0 / num_actions))

        return QuantizedStrategyPair(
            sample(num_row_actions), sample(num_col_actions), num_intervals
        )
