"""The C-Nash solver: the paper's primary contribution as a library API.

:class:`CNashSolver` ties together the MAX-QUBO transformation, the
quantised strategy representation, the two-phase SA controller and
(optionally) the FeFET bi-crossbar hardware model.  Typical use::

    from repro import CNashSolver, battle_of_the_sexes

    solver = CNashSolver(battle_of_the_sexes())
    batch = solver.solve_batch(num_runs=100, seed=0)
    print(batch.success_rate)
    equilibria = solver.distinct_solutions(batch)
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.annealing.batch import run_batch
from repro.annealing.vectorized import run_scaled_progress_callback
from repro.core.config import CNashConfig
from repro.core.max_qubo import HardwareEvaluator, IdealEvaluator, ObjectiveEvaluator
from repro.core.result import SolverBatchResult, SolverRunResult
from repro.core.strategy import QuantizedStrategyPair
from repro.core.two_phase_sa import (
    fused_multi_supported,
    run_two_phase_sa,
    run_two_phase_sa_batch,
    run_two_phase_sa_multi,
)
from repro.games.bimatrix import BimatrixGame
from repro.games.equilibrium import (
    EquilibriumSet,
    StrategyProfile,
    classify_profile,
    is_epsilon_equilibrium,
)
from repro.hardware.bicrossbar import BiCrossbar
from repro.hardware.corners import ProcessCorner, TT
from repro.hardware.noise import VariabilityModel
from repro.hardware.timing import CNashTimingModel, timing_for_game_shape
from repro.telemetry import family_cache
from repro.utils.rng import SeedLike


@family_cache
def _kernel_metrics(reg):
    """Kernel-level metric handles on the process-global registry.

    Declared lazily (declaration is idempotent) so importing the solver
    never races registry swaps in tests; memoized per registry/pid.
    """
    return (
        reg.counter(
            "repro_kernel_launches_total",
            "Annealing kernel launches (vectorized batch or fused multi-game).",
        ),
        reg.counter(
            "repro_kernel_proposals_total",
            "SA proposals evaluated, summed over every chain in every launch.",
        ),
        reg.counter(
            "repro_kernel_accepted_total",
            "SA proposals accepted, summed over every chain in every launch.",
        ),
        reg.counter(
            "repro_kernel_resyncs_total",
            "Incremental-energy cache rebuilds inside fused kernel launches.",
        ),
        reg.histogram(
            "repro_kernel_seconds",
            "Wall-clock seconds per kernel launch.",
        ),
    )


def _record_kernel_launch(batch, num_chains: int, elapsed: float) -> None:
    """Account one finished launch's work to the kernel metric families."""
    launches, proposals, accepted, resyncs, seconds = _kernel_metrics()
    launches.inc()
    proposals.inc(batch.num_iterations * num_chains)
    accepted.inc(int(np.sum(batch.num_accepted)))
    if getattr(batch, "num_resyncs", 0):
        resyncs.inc(batch.num_resyncs)
    seconds.observe(elapsed)


class CNashSolver:
    """Finds pure and mixed Nash equilibria with the C-Nash architecture.

    Parameters
    ----------
    game:
        The two-player game to solve.
    config:
        Solver configuration (quantisation, iterations, temperatures,
        hardware-in-the-loop evaluation, ...).
    variability:
        Hardware variability model (only used with
        ``config.use_hardware``); defaults to the paper's parameters.
    corner:
        Process corner for the hardware model.
    seed:
        Seed for the *hardware instance* (device-to-device variability);
        per-run seeds are passed to the solve methods.
    """

    def __init__(
        self,
        game: BimatrixGame,
        config: Optional[CNashConfig] = None,
        variability: Optional[VariabilityModel] = None,
        corner: ProcessCorner = TT,
        seed: SeedLike = None,
    ) -> None:
        self.game = game
        self.config = config or CNashConfig()
        self.corner = corner
        self._purity_atol = 0.5 / self.config.num_intervals
        if self.config.use_hardware:
            bicrossbar = BiCrossbar(
                game,
                num_intervals=self.config.num_intervals,
                cells_per_element=self.config.cells_per_element,
                variability=variability,
                adc_bits=self.config.adc_bits,
                corner=corner,
                seed=seed,
            )
            self.evaluator: ObjectiveEvaluator = HardwareEvaluator(game, bicrossbar)
        else:
            self.evaluator = IdealEvaluator(game)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Equilibrium tolerance used to classify solver output."""
        payoff_scale = float(
            max(abs(self.game.payoff_row).max(), abs(self.game.payoff_col).max())
        )
        return self.config.effective_epsilon(payoff_scale)

    def timing_model(self) -> CNashTimingModel:
        """The hardware timing model for this game's shape."""
        n, m = self.game.shape
        return timing_for_game_shape(n, m)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self, seed: SeedLike = None, initial_state: Optional[QuantizedStrategyPair] = None
    ) -> SolverRunResult:
        """Run one SA run and classify its best strategy pair."""
        run = run_two_phase_sa(self.evaluator, self.config, seed=seed, initial_state=initial_state)
        return self._classify_run(
            best_state=run.best_state,
            best_objective=run.best_objective,
            iterations=run.result.num_iterations,
            iterations_to_best=run.result.iterations_to_best,
            acceptance_rate=run.result.acceptance_rate,
            objective_history=run.result.energy_history,
        )

    def solve_batch(
        self,
        num_runs: int,
        seed: SeedLike = None,
        progress=None,
    ) -> SolverBatchResult:
        """Run ``num_runs`` independent SA runs (the paper's 5000-run protocol).

        With ``config.execution == "vectorized"`` (the default) all runs
        advance in lockstep as stacked array operations — one batched
        objective evaluation per iteration instead of one tiny evaluation
        per run per iteration.  ``config.evaluation`` picks how candidate
        energies are computed on that path: ``"delta"`` (default) uses the
        fused O(n+m) rank-1 kernel wherever the evaluator supports it,
        ``"full"`` re-evaluates the whole objective per proposal; the
        hardware evaluator always performs its full two-phase reads.
        ``"sequential"`` executes the runs one at a time with per-run
        generators (the reference implementation).  All paths sample the
        same move/acceptance distributions, so the batch statistics
        match.

        Parameters
        ----------
        progress:
            Optional ``progress(completed, total)`` callback.  The
            sequential engine reports completed runs; the vectorized
            engine (where all runs finish together) reports the
            completed fraction of the iteration budget scaled to run
            counts, ending at ``(num_runs, num_runs)`` either way.
        """
        if not isinstance(num_runs, (int, np.integer)) or isinstance(num_runs, bool):
            raise ValueError(f"num_runs must be an integer >= 1, got {num_runs!r}")
        if num_runs < 1:
            raise ValueError(f"num_runs must be >= 1, got {num_runs}")
        start = time.perf_counter()
        if self.config.execution == "vectorized":
            runs = self._solve_batch_vectorized(num_runs, seed, progress)
        else:
            batch = run_batch(
                lambda rng, index: self.solve(seed=rng),
                num_runs,
                seed=seed,
                progress=progress,
            )
            runs = list(batch.results)
        elapsed = time.perf_counter() - start
        return SolverBatchResult(
            game_name=self.game.name,
            runs=runs,
            num_intervals=self.config.num_intervals,
            wall_clock_seconds=elapsed,
        )

    def _solve_batch_vectorized(
        self, num_runs: int, seed: SeedLike, progress
    ) -> List[SolverRunResult]:
        """Run all chains through the vectorized engine and classify each.

        All runs finish together, so ``progress(completed, total)`` is
        reported as the fraction of the iteration budget done (scaled to
        run counts), throttled to ~100 updates over the whole batch.
        """
        callback = None
        if progress is not None:
            callback = run_scaled_progress_callback(
                progress, self.config.num_iterations, num_runs
            )
        launch_start = time.perf_counter()
        batch = run_two_phase_sa_batch(
            self.evaluator, self.config, num_runs, seed=seed, callback=callback
        )
        _record_kernel_launch(batch, num_runs, time.perf_counter() - launch_start)
        acceptance_rates = batch.acceptance_rates
        runs: List[SolverRunResult] = []
        for index in range(num_runs):
            runs.append(
                self._classify_run(
                    best_state=batch.best_states.state(index),
                    best_objective=float(batch.best_energies[index]),
                    iterations=batch.num_iterations,
                    iterations_to_best=int(batch.iterations_to_best[index]),
                    acceptance_rate=float(acceptance_rates[index]),
                    objective_history=batch.chain_history(index),
                )
            )
        return runs

    def _classify_run(
        self,
        best_state: QuantizedStrategyPair,
        best_objective: float,
        iterations: int,
        iterations_to_best: int,
        acceptance_rate: float,
        objective_history: List[float],
    ) -> SolverRunResult:
        """Classify one run's best state against the exact game payoffs.

        The hardware may report a noisy objective, but whether the
        returned strategy pair is an equilibrium is a property of the
        game, so classification always uses the exact payoffs.
        """
        classification = classify_profile(
            self.game,
            best_state.to_profile(),
            epsilon=self.epsilon,
            purity_atol=self._purity_atol,
        )
        return SolverRunResult(
            best_state=best_state,
            best_objective=best_objective,
            is_equilibrium=classification != "error",
            classification=classification,
            iterations=iterations,
            iterations_to_best=iterations_to_best,
            acceptance_rate=acceptance_rate,
            objective_history=objective_history,
        )

    # ------------------------------------------------------------------
    # Post-processing
    # ------------------------------------------------------------------
    def distinct_solutions(
        self, batch: SolverBatchResult, atol: Optional[float] = None
    ) -> EquilibriumSet:
        """De-duplicated equilibria found across a batch of runs."""
        atol = atol if atol is not None else 0.5 / self.config.num_intervals
        return EquilibriumSet.from_profiles(
            self.game, (run.profile for run in batch.runs if run.success), atol=atol
        )

    def verify(self, profile: StrategyProfile, epsilon: Optional[float] = None) -> bool:
        """Check a profile against the game with the solver's tolerance."""
        return is_epsilon_equilibrium(
            self.game, profile.p, profile.q, self.epsilon if epsilon is None else epsilon
        )

    def time_to_solution_s(self, batch: SolverBatchResult) -> Optional[float]:
        """Estimated hardware time to find a solution, from a batch's statistics.

        Each SA run costs its full iteration budget on the hardware (the
        annealing schedule runs to completion before the result is read
        out, as in the paper's protocol), and the expected number of runs
        until a success is ``1 / success_rate``.
        """
        if batch.success_rate == 0:
            return None
        timing = self.timing_model()
        expected_runs = 1.0 / batch.success_rate
        total_iterations = expected_runs * self.config.num_iterations
        return timing.time_to_solution_s(total_iterations)


def fused_shards_supported(config: CNashConfig, shape: Tuple[int, int]) -> bool:
    """Whether same-shape shards under ``config`` may share one fused launch.

    A thin re-export of
    :func:`repro.core.two_phase_sa.fused_multi_supported` so service-layer
    callers gate on the solver API rather than the kernel module.
    """
    return fused_multi_supported(config, shape)


def solve_shards_fused(
    shards: Sequence[Tuple[BimatrixGame, int, SeedLike]],
    config: Optional[CNashConfig] = None,
) -> List[SolverBatchResult]:
    """Solve many same-shape shard jobs as one fused kernel launch.

    ``shards[j] = (game, num_runs, seed)``; the returned batch ``j`` is
    bit-identical (same runs, same classifications — everything except
    ``wall_clock_seconds``) to
    ``CNashSolver(game, config).solve_batch(num_runs, seed=seed)``,
    because each shard keeps its own RNG stream inside the fused launch.
    The launch amortises the per-iteration Python overhead of the fused
    kernel across all shards, which at small per-shard chain counts is
    the dominant cost.  Callers must gate on :func:`fused_shards_supported`
    (all games must additionally share one shape) and should fall back to
    per-shard :meth:`CNashSolver.solve_batch` when unsupported.

    The launch's wall clock is attributed to the per-shard results
    proportionally to chain counts.
    """
    if not shards:
        return []
    config = config or CNashConfig()
    shape = shards[0][0].shape
    if not fused_shards_supported(config, shape):
        raise ValueError(
            "configuration does not support fused multi-shard execution; "
            "gate on fused_shards_supported() and dispatch shards solo"
        )
    start = time.perf_counter()
    solvers = [CNashSolver(game, config) for game, _, _ in shards]
    batch = run_two_phase_sa_multi(
        [solver.evaluator for solver in solvers],
        config,
        [(num_runs, seed) for _, num_runs, seed in shards],
    )
    elapsed = time.perf_counter() - start
    total_runs = sum(num_runs for _, num_runs, _ in shards)
    _record_kernel_launch(batch, total_runs, elapsed)
    acceptance_rates = batch.acceptance_rates
    results: List[SolverBatchResult] = []
    offset = 0
    for solver, (game, num_runs, _) in zip(solvers, shards):
        runs: List[SolverRunResult] = []
        for index in range(offset, offset + num_runs):
            runs.append(
                solver._classify_run(
                    best_state=batch.best_states.state(index),
                    best_objective=float(batch.best_energies[index]),
                    iterations=batch.num_iterations,
                    iterations_to_best=int(batch.iterations_to_best[index]),
                    acceptance_rate=float(acceptance_rates[index]),
                    objective_history=batch.chain_history(index),
                )
            )
        offset += num_runs
        results.append(
            SolverBatchResult(
                game_name=game.name,
                runs=runs,
                num_intervals=config.num_intervals,
                wall_clock_seconds=elapsed * num_runs / total_runs,
            )
        )
    return results
