"""The C-Nash solver: the paper's primary contribution as a library API.

:class:`CNashSolver` ties together the MAX-QUBO transformation, the
quantised strategy representation, the two-phase SA controller and
(optionally) the FeFET bi-crossbar hardware model.  Typical use::

    from repro import CNashSolver, battle_of_the_sexes

    solver = CNashSolver(battle_of_the_sexes())
    batch = solver.solve_batch(num_runs=100, seed=0)
    print(batch.success_rate)
    equilibria = solver.distinct_solutions(batch)
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.config import CNashConfig
from repro.core.max_qubo import HardwareEvaluator, IdealEvaluator, ObjectiveEvaluator
from repro.core.result import SolverBatchResult, SolverRunResult
from repro.core.strategy import QuantizedStrategyPair
from repro.core.two_phase_sa import run_two_phase_sa
from repro.games.bimatrix import BimatrixGame
from repro.games.equilibrium import (
    EquilibriumSet,
    StrategyProfile,
    classify_profile,
    is_epsilon_equilibrium,
)
from repro.hardware.bicrossbar import BiCrossbar
from repro.hardware.corners import ProcessCorner, TT
from repro.hardware.noise import VariabilityModel
from repro.hardware.timing import CNashTimingModel, timing_for_game_shape
from repro.utils.rng import SeedLike, as_generator, spawn_generators


class CNashSolver:
    """Finds pure and mixed Nash equilibria with the C-Nash architecture.

    Parameters
    ----------
    game:
        The two-player game to solve.
    config:
        Solver configuration (quantisation, iterations, temperatures,
        hardware-in-the-loop evaluation, ...).
    variability:
        Hardware variability model (only used with
        ``config.use_hardware``); defaults to the paper's parameters.
    corner:
        Process corner for the hardware model.
    seed:
        Seed for the *hardware instance* (device-to-device variability);
        per-run seeds are passed to the solve methods.
    """

    def __init__(
        self,
        game: BimatrixGame,
        config: Optional[CNashConfig] = None,
        variability: Optional[VariabilityModel] = None,
        corner: ProcessCorner = TT,
        seed: SeedLike = None,
    ) -> None:
        self.game = game
        self.config = config or CNashConfig()
        self.corner = corner
        self._purity_atol = 0.5 / self.config.num_intervals
        if self.config.use_hardware:
            bicrossbar = BiCrossbar(
                game,
                num_intervals=self.config.num_intervals,
                cells_per_element=self.config.cells_per_element,
                variability=variability,
                adc_bits=self.config.adc_bits,
                corner=corner,
                seed=seed,
            )
            self.evaluator: ObjectiveEvaluator = HardwareEvaluator(game, bicrossbar)
        else:
            self.evaluator = IdealEvaluator(game)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Equilibrium tolerance used to classify solver output."""
        payoff_scale = float(
            max(abs(self.game.payoff_row).max(), abs(self.game.payoff_col).max())
        )
        return self.config.effective_epsilon(payoff_scale)

    def timing_model(self) -> CNashTimingModel:
        """The hardware timing model for this game's shape."""
        n, m = self.game.shape
        return timing_for_game_shape(n, m)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self, seed: SeedLike = None, initial_state: Optional[QuantizedStrategyPair] = None
    ) -> SolverRunResult:
        """Run one SA run and classify its best strategy pair."""
        run = run_two_phase_sa(self.evaluator, self.config, seed=seed, initial_state=initial_state)
        best_state = run.best_state
        profile = best_state.to_profile()
        # Classification is always done against the *exact* game payoffs:
        # the hardware may report a noisy objective, but whether the
        # returned strategy pair is an equilibrium is a property of the game.
        classification = classify_profile(
            self.game, profile, epsilon=self.epsilon, purity_atol=self._purity_atol
        )
        is_equilibrium = classification != "error"
        return SolverRunResult(
            best_state=best_state,
            best_objective=run.best_objective,
            is_equilibrium=is_equilibrium,
            classification=classification,
            iterations=run.result.num_iterations,
            iterations_to_best=run.result.iterations_to_best,
            acceptance_rate=run.result.acceptance_rate,
            objective_history=run.result.energy_history,
        )

    def solve_batch(
        self,
        num_runs: int,
        seed: SeedLike = None,
        progress=None,
    ) -> SolverBatchResult:
        """Run ``num_runs`` independent SA runs (the paper's 5000-run protocol).

        Parameters
        ----------
        progress:
            Optional ``progress(completed, total)`` callback.
        """
        if num_runs <= 0:
            raise ValueError(f"num_runs must be positive, got {num_runs}")
        generators = spawn_generators(seed, num_runs)
        runs: List[SolverRunResult] = []
        start = time.perf_counter()
        for index, rng in enumerate(generators):
            runs.append(self.solve(seed=rng))
            if progress is not None:
                progress(index + 1, num_runs)
        elapsed = time.perf_counter() - start
        return SolverBatchResult(
            game_name=self.game.name,
            runs=runs,
            num_intervals=self.config.num_intervals,
            wall_clock_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Post-processing
    # ------------------------------------------------------------------
    def distinct_solutions(
        self, batch: SolverBatchResult, atol: Optional[float] = None
    ) -> EquilibriumSet:
        """De-duplicated equilibria found across a batch of runs."""
        atol = atol if atol is not None else 0.5 / self.config.num_intervals
        found = EquilibriumSet(game=self.game, atol=atol)
        for run in batch.runs:
            if run.success:
                found.add(run.profile)
        return found

    def verify(self, profile: StrategyProfile, epsilon: Optional[float] = None) -> bool:
        """Check a profile against the game with the solver's tolerance."""
        return is_epsilon_equilibrium(
            self.game, profile.p, profile.q, self.epsilon if epsilon is None else epsilon
        )

    def time_to_solution_s(self, batch: SolverBatchResult) -> Optional[float]:
        """Estimated hardware time to find a solution, from a batch's statistics.

        Each SA run costs its full iteration budget on the hardware (the
        annealing schedule runs to completion before the result is read
        out, as in the paper's protocol), and the expected number of runs
        until a success is ``1 / success_rate``.
        """
        if batch.success_rate == 0:
            return None
        timing = self.timing_model()
        expected_runs = 1.0 / batch.success_rate
        total_iterations = expected_runs * self.config.num_iterations
        return timing.time_to_solution_s(total_iterations)
