"""C-Nash core: MAX-QUBO transformation, two-phase SA and the solver API.

This package implements the paper's primary contribution: the lossless
MAX-QUBO formulation of the Nash-equilibrium problem (Sec. 3.1), the
quantised mixed-strategy representation the crossbar mapping induces
(Sec. 3.2), the two-phase simulated-annealing controller (Sec. 3.4 /
Alg. 1) and the :class:`~repro.core.solver.CNashSolver` front end that
ties them to either an exact evaluator or the FeFET hardware model.
"""

from repro.core.config import PAPER_ITERATIONS, PAPER_NUM_RUNS, CNashConfig
from repro.core.max_qubo import (
    GridOptimum,
    HardwareEvaluator,
    IdealEvaluator,
    IncrementalIdealState,
    ObjectiveEvaluator,
    composition_grid,
    enumerate_grid_optimum,
    max_qubo_breakdown,
    max_qubo_objective,
)
from repro.core.result import SolverBatchResult, SolverRunResult
from repro.core.solver import CNashSolver
from repro.core.strategy import (
    BatchedStrategyState,
    QuantizedStrategyPair,
    StrategyMoveGenerator,
    TransferMoveBatch,
    sample_transfer_moves,
)
from repro.core.two_phase_sa import (
    BatchTwoPhaseAnnealingProblem,
    FusedTwoPhaseProblem,
    TwoPhaseAnnealingProblem,
    TwoPhaseSARun,
    run_two_phase_sa,
    run_two_phase_sa_batch,
)

__all__ = [
    "CNashSolver",
    "CNashConfig",
    "PAPER_ITERATIONS",
    "PAPER_NUM_RUNS",
    "QuantizedStrategyPair",
    "BatchedStrategyState",
    "StrategyMoveGenerator",
    "TransferMoveBatch",
    "sample_transfer_moves",
    "max_qubo_objective",
    "max_qubo_breakdown",
    "ObjectiveEvaluator",
    "IdealEvaluator",
    "IncrementalIdealState",
    "HardwareEvaluator",
    "GridOptimum",
    "composition_grid",
    "enumerate_grid_optimum",
    "TwoPhaseAnnealingProblem",
    "BatchTwoPhaseAnnealingProblem",
    "FusedTwoPhaseProblem",
    "TwoPhaseSARun",
    "run_two_phase_sa",
    "run_two_phase_sa_batch",
    "SolverRunResult",
    "SolverBatchResult",
]
