"""The two-phase simulated-annealing controller (Alg. 1).

Each SA iteration consists of two hardware phases (Sec. 3.4):

* **Phase 1** — the crossbars compute the matrix-vector products ``Mq``
  and ``N^T p`` with unit row/column inputs and the WTA trees extract
  ``max(Mq)`` and ``max(N^T p)``;
* **Phase 2** — the crossbars compute the VMV products ``p^T M q`` and
  ``p^T N q`` with the WTA trees deactivated.

The SA logic combines the three terms into the MAX-QUBO objective,
compares it with the recorded value, and accepts or rejects the new
strategy pair with the Metropolis rule at the current temperature
(Alg. 1, lines 8–13).  In this reproduction both phases are performed by
the :class:`~repro.core.max_qubo.ObjectiveEvaluator` (either exact or
through the bi-crossbar model), and this module supplies the annealing
problem definition plus a convenience runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.annealing.engine import AnnealingConfig, AnnealingResult, AnnealingProblem, SimulatedAnnealer
from repro.annealing.vectorized import (
    BatchAnnealingProblem,
    BatchAnnealingResult,
    VectorizedAnnealer,
)
from repro.core.config import CNashConfig
from repro.core.max_qubo import ObjectiveEvaluator
from repro.core.strategy import BatchedStrategyState, QuantizedStrategyPair, StrategyMoveGenerator
from repro.utils.rng import SeedLike


class TwoPhaseAnnealingProblem(AnnealingProblem[QuantizedStrategyPair]):
    """The MAX-QUBO minimisation over the quantised strategy grid."""

    def __init__(
        self,
        evaluator: ObjectiveEvaluator,
        num_intervals: int,
        move_generator: Optional[StrategyMoveGenerator] = None,
        pure_start_bias: float = 0.5,
    ) -> None:
        self.evaluator = evaluator
        self.num_intervals = num_intervals
        self.move_generator = move_generator or StrategyMoveGenerator()
        self.pure_start_bias = pure_start_bias
        self._shape = evaluator.game.shape

    def initial_state(self, rng: np.random.Generator) -> QuantizedStrategyPair:
        n, m = self._shape
        return self.move_generator.random_state(
            n, m, self.num_intervals, rng, pure_bias=self.pure_start_bias
        )

    def propose(
        self, state: QuantizedStrategyPair, rng: np.random.Generator
    ) -> QuantizedStrategyPair:
        return self.move_generator.propose(state, rng)

    def energy(self, state: QuantizedStrategyPair) -> float:
        return self.evaluator.evaluate(state)


class BatchTwoPhaseAnnealingProblem(BatchAnnealingProblem[BatchedStrategyState]):
    """Chain-parallel MAX-QUBO minimisation over stacked strategy batches.

    The batched counterpart of :class:`TwoPhaseAnnealingProblem`: all
    chains propose interval-transfer moves and evaluate the objective
    (exactly, or through the batched bi-crossbar datapath) as whole-batch
    array operations.
    """

    def __init__(
        self,
        evaluator: ObjectiveEvaluator,
        num_intervals: int,
        move_both_players: bool = False,
        pure_start_bias: float = 0.5,
    ) -> None:
        self.evaluator = evaluator
        self.num_intervals = num_intervals
        self.move_both_players = move_both_players
        self.pure_start_bias = pure_start_bias
        self._shape = evaluator.game.shape

    def initial_states(
        self, batch_size: int, rng: np.random.Generator
    ) -> BatchedStrategyState:
        n, m = self._shape
        return BatchedStrategyState.random(
            batch_size, n, m, self.num_intervals, rng, pure_bias=self.pure_start_bias
        )

    def propose_batch(
        self, states: BatchedStrategyState, rng: np.random.Generator
    ) -> BatchedStrategyState:
        return states.transfer_moves(rng, move_both_players=self.move_both_players)

    def energies(self, states: BatchedStrategyState) -> np.ndarray:
        return self.evaluator.evaluate_batch(states)

    def select(
        self,
        mask: np.ndarray,
        accepted: BatchedStrategyState,
        rejected: BatchedStrategyState,
    ) -> BatchedStrategyState:
        return BatchedStrategyState.where(mask, accepted, rejected)

    def unstack(self, states: BatchedStrategyState, index: int) -> QuantizedStrategyPair:
        return states.state(index)


@dataclass
class TwoPhaseSARun:
    """Raw outcome of one two-phase SA run (before NE classification)."""

    result: AnnealingResult[QuantizedStrategyPair]

    @property
    def best_state(self) -> QuantizedStrategyPair:
        """The lowest-objective state visited."""
        return self.result.best_state

    @property
    def best_objective(self) -> float:
        """The lowest objective value observed."""
        return self.result.best_energy


def run_two_phase_sa(
    evaluator: ObjectiveEvaluator,
    config: CNashConfig,
    seed: SeedLike = None,
    initial_state: Optional[QuantizedStrategyPair] = None,
) -> TwoPhaseSARun:
    """Run Alg. 1 once and return the raw annealing result.

    The temperature starts at ``config.initial_temperature`` and decays
    geometrically to ``config.final_temperature`` over
    ``config.num_iterations`` iterations; each iteration proposes a
    neighbouring strategy pair, evaluates the objective via the two
    hardware phases, and applies the Metropolis acceptance rule.
    """
    problem = TwoPhaseAnnealingProblem(
        evaluator=evaluator,
        num_intervals=config.num_intervals,
        move_generator=StrategyMoveGenerator(move_both_players=config.move_both_players),
        pure_start_bias=config.pure_start_bias,
    )
    annealer = SimulatedAnnealer(
        problem,
        AnnealingConfig(
            num_iterations=config.num_iterations,
            schedule=config.schedule(),
            acceptance=config.acceptance,
            record_history=config.record_history,
        ),
    )
    result = annealer.run(seed=seed, initial_state=initial_state)
    return TwoPhaseSARun(result=result)


def run_two_phase_sa_batch(
    evaluator: ObjectiveEvaluator,
    config: CNashConfig,
    num_runs: int,
    seed: SeedLike = None,
    initial_states: Optional[BatchedStrategyState] = None,
    callback=None,
) -> BatchAnnealingResult[BatchedStrategyState]:
    """Run ``num_runs`` independent Alg.-1 chains in lockstep.

    The vectorized counterpart of calling :func:`run_two_phase_sa`
    ``num_runs`` times: every iteration proposes one move per chain and
    evaluates all objectives as a single stacked computation (ideal
    einsum path or batched bi-crossbar reads).  The whole batch is
    reproducible from a single ``seed``.
    """
    problem = BatchTwoPhaseAnnealingProblem(
        evaluator=evaluator,
        num_intervals=config.num_intervals,
        move_both_players=config.move_both_players,
        pure_start_bias=config.pure_start_bias,
    )
    annealer = VectorizedAnnealer(
        problem,
        AnnealingConfig(
            num_iterations=config.num_iterations,
            schedule=config.schedule(),
            acceptance=config.acceptance,
            record_history=config.record_history,
        ),
    )
    return annealer.run(
        num_runs, seed=seed, initial_states=initial_states, callback=callback
    )
