"""The two-phase simulated-annealing controller (Alg. 1).

Each SA iteration consists of two hardware phases (Sec. 3.4):

* **Phase 1** — the crossbars compute the matrix-vector products ``Mq``
  and ``N^T p`` with unit row/column inputs and the WTA trees extract
  ``max(Mq)`` and ``max(N^T p)``;
* **Phase 2** — the crossbars compute the VMV products ``p^T M q`` and
  ``p^T N q`` with the WTA trees deactivated.

The SA logic combines the three terms into the MAX-QUBO objective,
compares it with the recorded value, and accepts or rejects the new
strategy pair with the Metropolis rule at the current temperature
(Alg. 1, lines 8–13).  In this reproduction both phases are performed by
the :class:`~repro.core.max_qubo.ObjectiveEvaluator` (either exact or
through the bi-crossbar model), and this module supplies the annealing
problem definition plus a convenience runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.annealing.engine import AnnealingConfig, AnnealingResult, AnnealingProblem, SimulatedAnnealer
from repro.annealing.vectorized import (
    BatchAnnealingProblem,
    BatchAnnealingResult,
    FusedAnnealer,
    FusedBatchProblem,
    MultiFusedBatchProblem,
    VectorizedAnnealer,
)
from repro.core.config import CNashConfig
from repro.core.max_qubo import IdealEvaluator, ObjectiveEvaluator, StackedIncrementalState
from repro.core.strategy import (
    BatchedStrategyState,
    QuantizedStrategyPair,
    StrategyMoveGenerator,
    TransferMoveBatch,
    sample_transfer_moves,
)
from repro.utils.rng import SeedLike


class TwoPhaseAnnealingProblem(AnnealingProblem[QuantizedStrategyPair]):
    """The MAX-QUBO minimisation over the quantised strategy grid."""

    def __init__(
        self,
        evaluator: ObjectiveEvaluator,
        num_intervals: int,
        move_generator: Optional[StrategyMoveGenerator] = None,
        pure_start_bias: float = 0.5,
    ) -> None:
        self.evaluator = evaluator
        self.num_intervals = num_intervals
        self.move_generator = move_generator or StrategyMoveGenerator()
        self.pure_start_bias = pure_start_bias
        self._shape = evaluator.game.shape

    def initial_state(self, rng: np.random.Generator) -> QuantizedStrategyPair:
        n, m = self._shape
        return self.move_generator.random_state(
            n, m, self.num_intervals, rng, pure_bias=self.pure_start_bias
        )

    def propose(
        self, state: QuantizedStrategyPair, rng: np.random.Generator
    ) -> QuantizedStrategyPair:
        return self.move_generator.propose(state, rng)

    def energy(self, state: QuantizedStrategyPair) -> float:
        return self.evaluator.evaluate(state)


class BatchTwoPhaseAnnealingProblem(BatchAnnealingProblem[BatchedStrategyState]):
    """Chain-parallel MAX-QUBO minimisation over stacked strategy batches.

    The batched counterpart of :class:`TwoPhaseAnnealingProblem`: all
    chains propose interval-transfer moves and evaluate the objective
    (exactly, or through the batched bi-crossbar datapath) as whole-batch
    array operations.
    """

    def __init__(
        self,
        evaluator: ObjectiveEvaluator,
        num_intervals: int,
        move_both_players: bool = False,
        pure_start_bias: float = 0.5,
    ) -> None:
        self.evaluator = evaluator
        self.num_intervals = num_intervals
        self.move_both_players = move_both_players
        self.pure_start_bias = pure_start_bias
        self._shape = evaluator.game.shape

    def initial_states(
        self, batch_size: int, rng: np.random.Generator
    ) -> BatchedStrategyState:
        n, m = self._shape
        return BatchedStrategyState.random(
            batch_size, n, m, self.num_intervals, rng, pure_bias=self.pure_start_bias
        )

    def propose_batch(
        self, states: BatchedStrategyState, rng: np.random.Generator
    ) -> BatchedStrategyState:
        return states.transfer_moves(rng, move_both_players=self.move_both_players)

    def energies(self, states: BatchedStrategyState) -> np.ndarray:
        return self.evaluator.evaluate_batch(states)

    def select(
        self,
        mask: np.ndarray,
        accepted: BatchedStrategyState,
        rejected: BatchedStrategyState,
    ) -> BatchedStrategyState:
        return BatchedStrategyState.where(mask, accepted, rejected)

    def unstack(self, states: BatchedStrategyState, index: int) -> QuantizedStrategyPair:
        return states.state(index)


class FusedTwoPhaseProblem(FusedBatchProblem[BatchedStrategyState]):
    """MAX-QUBO minimisation on the fused in-place kernel.

    The chains' interval counts live in problem-owned ``(B, n)`` /
    ``(B, m)`` buffers; every iteration stages one structured
    interval-transfer move per chain (:class:`TransferMoveBatch`,
    sampled from pre-drawn block uniforms) and computes candidate
    energies either

    * ``evaluation="delta"`` — through the evaluator's
      :class:`~repro.core.max_qubo.IncrementalIdealState` rank-1 cache,
      ``O(B·(n+m))`` per iteration, periodically resynced; or
    * ``evaluation="full"`` — through ``evaluator.evaluate_batch`` on a
      double-buffered candidate state, ``O(B·n·m)`` per iteration.

    Both modes consume identical randomness, so at exactly representable
    payoffs (integer payoffs, power-of-two ``I``) they produce identical
    accept/reject sequences and equilibria.

    Rank-1 updates only pay off once a full ``O(n·m)`` product costs more
    than the delta bookkeeping, so ``evaluation="delta"`` falls back to
    full products for games with fewer than ``min_incremental_cells``
    payoff cells (the measured crossover; pass ``0`` to force incremental
    updates regardless of size, e.g. in equivalence tests).
    """

    #: Payoff-cell count below which delta evaluation uses full products.
    MIN_INCREMENTAL_CELLS = 36

    def __init__(
        self,
        evaluator: ObjectiveEvaluator,
        num_intervals: int,
        pure_start_bias: float = 0.5,
        evaluation: str = "delta",
        min_incremental_cells: Optional[int] = None,
    ) -> None:
        if evaluation not in ("delta", "full"):
            raise ValueError(f"evaluation must be 'delta' or 'full', got {evaluation!r}")
        if evaluation == "delta" and not evaluator.supports_incremental():
            raise ValueError(
                f"{type(evaluator).__name__} does not support incremental (delta) "
                "evaluation; use evaluation='full' or the VectorizedAnnealer path"
            )
        self.evaluator = evaluator
        self.num_intervals = num_intervals
        self.pure_start_bias = pure_start_bias
        self.evaluation = evaluation
        self._shape = evaluator.game.shape
        if min_incremental_cells is None:
            min_incremental_cells = self.MIN_INCREMENTAL_CELLS
        n, m = self._shape
        self._use_incremental = evaluation == "delta" and n * m >= min_incremental_cells
        self._incremental = None
        self._moves: Optional[TransferMoveBatch] = None

    # ------------------------------------------------------------------
    # FusedBatchProblem interface
    # ------------------------------------------------------------------
    def begin(
        self,
        batch_size: int,
        rng: np.random.Generator,
        initial_states: Optional[BatchedStrategyState] = None,
    ) -> np.ndarray:
        n, m = self._shape
        if initial_states is None:
            initial_states = BatchedStrategyState.random(
                batch_size, n, m, self.num_intervals, rng, pure_bias=self.pure_start_bias
            )
        self._p_counts = np.array(initial_states.p_counts, dtype=int)
        self._q_counts = np.array(initial_states.q_counts, dtype=int)
        self._state_view = BatchedStrategyState(
            self._p_counts, self._q_counts, self.num_intervals
        )
        if self._use_incremental:
            self._incremental = self.evaluator.incremental_state(self._state_view)
            return self._incremental.energies()
        self._cand_p = self._p_counts.copy()
        self._cand_q = self._q_counts.copy()
        self._cand_view = BatchedStrategyState(
            self._cand_p, self._cand_q, self.num_intervals
        )
        return np.array(self.evaluator.evaluate_batch(self._state_view), dtype=float)

    def draw_block(self, num_steps: int, rng: np.random.Generator) -> None:
        # One generator call per block: player choice, donor pick and
        # receiver pick for every chain and step.
        self._uniforms = rng.random((3, num_steps, self._p_counts.shape[0]))

    def propose(self, step: int) -> np.ndarray:
        u_player, u_donor, u_receiver = self._uniforms[:, step]
        moves = sample_transfer_moves(
            self._p_counts, self._q_counts, u_player, u_donor, u_receiver
        )
        self._moves = moves
        if self._incremental is not None:
            return self._incremental.candidate_energies(moves)
        np.copyto(self._cand_p, self._p_counts)
        np.copyto(self._cand_q, self._q_counts)
        moves.apply(self._cand_p, self._cand_q)
        return np.asarray(self.evaluator.evaluate_batch(self._cand_view), dtype=float)

    def commit(self, accept: np.ndarray) -> None:
        assert self._moves is not None
        self._moves.apply(self._p_counts, self._q_counts, accept=accept)
        if self._incremental is not None:
            self._incremental.commit(accept)
        self._moves = None

    def resync(self) -> Optional[np.ndarray]:
        if self._incremental is None:
            return None
        return self._incremental.resync(self._state_view)

    def make_snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._p_counts.copy(), self._q_counts.copy()

    def update_snapshot(
        self, snapshot: Tuple[np.ndarray, np.ndarray], mask: np.ndarray
    ) -> None:
        snapshot_p, snapshot_q = snapshot
        np.copyto(snapshot_p, self._p_counts, where=mask[:, None])
        np.copyto(snapshot_q, self._q_counts, where=mask[:, None])

    def export_snapshot(
        self, snapshot: Tuple[np.ndarray, np.ndarray]
    ) -> BatchedStrategyState:
        snapshot_p, snapshot_q = snapshot
        return BatchedStrategyState(snapshot_p, snapshot_q, self.num_intervals)

    def export_states(self) -> BatchedStrategyState:
        return BatchedStrategyState(
            self._p_counts.copy(), self._q_counts.copy(), self.num_intervals
        )

    def current_states(self) -> BatchedStrategyState:
        return self._state_view

    def unstack(self, states: BatchedStrategyState, index: int) -> QuantizedStrategyPair:
        return states.state(index)


class MultiGameFusedProblem(MultiFusedBatchProblem[BatchedStrategyState]):
    """Chains of several same-shape games fused into one kernel launch.

    One launch per game: launch ``j``'s chains anneal against
    ``evaluators[j]``'s game through a
    :class:`~repro.core.max_qubo.StackedIncrementalState` whose
    per-iteration math gathers each chain's own payoff matrices.  Every
    launch draws from its own generator in the exact solo order
    (initial states, then per block proposal uniforms followed by
    acceptance uniforms), so each launch's chains are bit-identical to
    a solo :class:`FusedTwoPhaseProblem` run with the same seed.

    Only the incremental (delta) evaluation path exists here: full
    evaluation batches the ``O(n·m)`` products per *game*, which would
    change BLAS summation shapes and break bit-identity, and small
    games below the incremental crossover are cheap enough to run solo.
    Callers gate on :func:`fused_multi_supported`.
    """

    def __init__(
        self,
        evaluators: Sequence[IdealEvaluator],
        num_intervals: int,
        pure_start_bias: float = 0.5,
    ) -> None:
        if not evaluators:
            raise ValueError("need at least one evaluator")
        shape = evaluators[0].game.shape
        for evaluator in evaluators:
            if not evaluator.supports_incremental():
                raise ValueError(
                    f"{type(evaluator).__name__} does not support incremental (delta) "
                    "evaluation; multi-game fusion requires it"
                )
            if evaluator.game.shape != shape:
                raise ValueError(
                    f"all fused games must share one shape, got {shape} "
                    f"and {evaluator.game.shape}"
                )
        self.evaluators = list(evaluators)
        self.num_intervals = num_intervals
        self.pure_start_bias = pure_start_bias
        self._shape = shape
        self._moves: Optional[TransferMoveBatch] = None

    # ------------------------------------------------------------------
    # MultiFusedBatchProblem interface
    # ------------------------------------------------------------------
    def begin_multi(
        self, launches: Sequence[Tuple[int, np.random.Generator]]
    ) -> np.ndarray:
        if len(launches) != len(self.evaluators):
            raise ValueError(
                f"expected {len(self.evaluators)} launches (one per game), "
                f"got {len(launches)}"
            )
        n, m = self._shape
        p_parts: List[np.ndarray] = []
        q_parts: List[np.ndarray] = []
        sizes: List[int] = []
        for size, rng in launches:
            # The solo initial draw of FusedTwoPhaseProblem.begin, from
            # this launch's own generator.
            states = BatchedStrategyState.random(
                size, n, m, self.num_intervals, rng, pure_bias=self.pure_start_bias
            )
            p_parts.append(np.array(states.p_counts, dtype=int))
            q_parts.append(np.array(states.q_counts, dtype=int))
            sizes.append(size)
        self._p_counts = np.concatenate(p_parts, axis=0)
        self._q_counts = np.concatenate(q_parts, axis=0)
        self._state_view = BatchedStrategyState(
            self._p_counts, self._q_counts, self.num_intervals
        )
        offsets = np.cumsum([0] + sizes)
        self._bounds = [
            (int(offsets[j]), int(offsets[j + 1])) for j in range(len(sizes))
        ]
        chain_games = np.repeat(np.arange(len(sizes)), sizes)
        self._incremental = StackedIncrementalState.from_evaluators(
            self.evaluators, chain_games, self._state_view
        )
        return self._incremental.energies()

    def draw_block_multi(
        self, num_steps: int, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        blocks: List[np.ndarray] = []
        accepts: List[np.ndarray] = []
        for (start, stop), rng in zip(self._bounds, rngs):
            size = stop - start
            # Solo consumption order per launch: proposal block first,
            # acceptance uniforms second.
            blocks.append(rng.random((3, num_steps, size)))
            accepts.append(rng.random((num_steps, size)))
        self._uniforms = np.concatenate(blocks, axis=2)
        return np.concatenate(accepts, axis=1)

    # ------------------------------------------------------------------
    # FusedBatchProblem interface (shared stage/commit cycle)
    # ------------------------------------------------------------------
    def propose(self, step: int) -> np.ndarray:
        u_player, u_donor, u_receiver = self._uniforms[:, step]
        moves = sample_transfer_moves(
            self._p_counts, self._q_counts, u_player, u_donor, u_receiver
        )
        self._moves = moves
        return self._incremental.candidate_energies(moves)

    def commit(self, accept: np.ndarray) -> None:
        assert self._moves is not None
        self._moves.apply(self._p_counts, self._q_counts, accept=accept)
        self._incremental.commit(accept)
        self._moves = None

    def resync(self) -> Optional[np.ndarray]:
        return self._incremental.resync(self._state_view)

    def make_snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._p_counts.copy(), self._q_counts.copy()

    def update_snapshot(
        self, snapshot: Tuple[np.ndarray, np.ndarray], mask: np.ndarray
    ) -> None:
        snapshot_p, snapshot_q = snapshot
        np.copyto(snapshot_p, self._p_counts, where=mask[:, None])
        np.copyto(snapshot_q, self._q_counts, where=mask[:, None])

    def export_snapshot(
        self, snapshot: Tuple[np.ndarray, np.ndarray]
    ) -> BatchedStrategyState:
        snapshot_p, snapshot_q = snapshot
        return BatchedStrategyState(snapshot_p, snapshot_q, self.num_intervals)

    def export_states(self) -> BatchedStrategyState:
        return BatchedStrategyState(
            self._p_counts.copy(), self._q_counts.copy(), self.num_intervals
        )

    def current_states(self) -> BatchedStrategyState:
        return self._state_view

    def unstack(self, states: BatchedStrategyState, index: int) -> QuantizedStrategyPair:
        return states.state(index)


def fused_multi_supported(config: CNashConfig, shape: Tuple[int, int]) -> bool:
    """Whether a multi-game fused launch reproduces the solo kernel bit-for-bit.

    True exactly when the solo :func:`run_two_phase_sa_batch` would take
    the fused incremental (delta) path with an exact evaluator: the
    multi launch replays each launch's RNG stream through the same
    per-chain math, so any configuration outside that path (hardware
    noise, both-player moves, full evaluation, games below the
    incremental crossover) must keep solo dispatch.
    """
    n, m = shape
    return (
        config.execution == "vectorized"
        and config.evaluation == "delta"
        and not config.move_both_players
        and not config.use_hardware
        and n * m >= FusedTwoPhaseProblem.MIN_INCREMENTAL_CELLS
    )


def run_two_phase_sa_multi(
    evaluators: Sequence[IdealEvaluator],
    config: CNashConfig,
    launches: Sequence[Tuple[int, SeedLike]],
    callback=None,
) -> BatchAnnealingResult[BatchedStrategyState]:
    """Run several games' chain batches as one fused kernel launch.

    ``launches[j] = (num_runs, seed)`` pairs with ``evaluators[j]``; the
    stacked result holds launch ``j``'s chains at offset
    ``sum(num_runs[:j])``, each bit-identical to
    ``run_two_phase_sa_batch(evaluators[j], config, num_runs, seed)``.
    Callers must check :func:`fused_multi_supported` first.
    """
    if len(evaluators) != len(launches):
        raise ValueError(
            f"got {len(evaluators)} evaluators but {len(launches)} launches"
        )
    problem = MultiGameFusedProblem(
        evaluators=evaluators,
        num_intervals=config.num_intervals,
        pure_start_bias=config.pure_start_bias,
    )
    annealer = FusedAnnealer(
        problem,
        AnnealingConfig(
            num_iterations=config.num_iterations,
            schedule=config.schedule(),
            acceptance=config.acceptance,
            record_history=config.record_history,
        ),
    )
    return annealer.run_multi(launches, callback=callback)


@dataclass
class TwoPhaseSARun:
    """Raw outcome of one two-phase SA run (before NE classification)."""

    result: AnnealingResult[QuantizedStrategyPair]

    @property
    def best_state(self) -> QuantizedStrategyPair:
        """The lowest-objective state visited."""
        return self.result.best_state

    @property
    def best_objective(self) -> float:
        """The lowest objective value observed."""
        return self.result.best_energy


def run_two_phase_sa(
    evaluator: ObjectiveEvaluator,
    config: CNashConfig,
    seed: SeedLike = None,
    initial_state: Optional[QuantizedStrategyPair] = None,
) -> TwoPhaseSARun:
    """Run Alg. 1 once and return the raw annealing result.

    The temperature starts at ``config.initial_temperature`` and decays
    geometrically to ``config.final_temperature`` over
    ``config.num_iterations`` iterations; each iteration proposes a
    neighbouring strategy pair, evaluates the objective via the two
    hardware phases, and applies the Metropolis acceptance rule.
    """
    problem = TwoPhaseAnnealingProblem(
        evaluator=evaluator,
        num_intervals=config.num_intervals,
        move_generator=StrategyMoveGenerator(move_both_players=config.move_both_players),
        pure_start_bias=config.pure_start_bias,
    )
    annealer = SimulatedAnnealer(
        problem,
        AnnealingConfig(
            num_iterations=config.num_iterations,
            schedule=config.schedule(),
            acceptance=config.acceptance,
            record_history=config.record_history,
        ),
    )
    result = annealer.run(seed=seed, initial_state=initial_state)
    return TwoPhaseSARun(result=result)


def run_two_phase_sa_batch(
    evaluator: ObjectiveEvaluator,
    config: CNashConfig,
    num_runs: int,
    seed: SeedLike = None,
    initial_states: Optional[BatchedStrategyState] = None,
    callback=None,
) -> BatchAnnealingResult[BatchedStrategyState]:
    """Run ``num_runs`` independent Alg.-1 chains in lockstep.

    The vectorized counterpart of calling :func:`run_two_phase_sa`
    ``num_runs`` times: every iteration proposes one move per chain and
    evaluates all objectives as a single stacked computation.  The whole
    batch is reproducible from a single ``seed``.

    Execution routes through the fused in-place kernel
    (:class:`~repro.annealing.vectorized.FusedAnnealer` driving
    :class:`FusedTwoPhaseProblem`) whenever the evaluator supports it:
    single-player moves and, for ``config.evaluation == "delta"``, an
    evaluator advertising :meth:`ObjectiveEvaluator.supports_incremental`.
    The hardware evaluator (whose objective is a physical two-phase
    read), custom evaluators without incremental support and
    ``move_both_players`` runs keep the full-evaluation
    :class:`~repro.annealing.vectorized.VectorizedAnnealer` path
    unchanged.
    """
    annealing_config = AnnealingConfig(
        num_iterations=config.num_iterations,
        schedule=config.schedule(),
        acceptance=config.acceptance,
        record_history=config.record_history,
    )
    if not config.move_both_players and evaluator.supports_incremental():
        problem = FusedTwoPhaseProblem(
            evaluator=evaluator,
            num_intervals=config.num_intervals,
            pure_start_bias=config.pure_start_bias,
            evaluation=config.evaluation,
        )
        annealer = FusedAnnealer(problem, annealing_config)
        return annealer.run(
            num_runs, seed=seed, initial_states=initial_states, callback=callback
        )
    legacy_problem = BatchTwoPhaseAnnealingProblem(
        evaluator=evaluator,
        num_intervals=config.num_intervals,
        move_both_players=config.move_both_players,
        pure_start_bias=config.pure_start_bias,
    )
    legacy_annealer = VectorizedAnnealer(legacy_problem, annealing_config)
    return legacy_annealer.run(
        num_runs, seed=seed, initial_states=initial_states, callback=callback
    )
