"""The MAX-QUBO transformation and its evaluators.

Sec. 3.1 of the paper converts the Mangasarian–Stone quadratic program
for Nash equilibria into the *lossless* MAX-QUBO form

    min_{p, q}  f(p, q) = max(Mq) + max(N^T p) - p^T (M + N) q        (Eq. 9)

with the simplex constraints enforced structurally.  The objective is
non-negative for every strategy pair and equals zero exactly at the Nash
equilibria, so minimising it (over the quantised strategy grid) searches
for equilibria without any slack variables or penalty weights.

Two evaluators are provided behind a common interface:

* :class:`IdealEvaluator` — exact floating-point evaluation, used for the
  large statistical sweeps and as the reference in tests;
* :class:`HardwareEvaluator` — evaluation through the FeFET bi-crossbar,
  WTA trees and ADCs (:class:`~repro.hardware.bicrossbar.BiCrossbar`),
  i.e. what the silicon would compute, with device variability and
  quantisation included.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.games.bimatrix import BimatrixGame
from repro.core.strategy import BatchedStrategyState, QuantizedStrategyPair
from repro.hardware.bicrossbar import BiCrossbar, ObjectiveBreakdown


def max_qubo_objective(game: BimatrixGame, p: np.ndarray, q: np.ndarray) -> float:
    """Exact MAX-QUBO objective value for probability vectors ``p, q``.

    ``f(p, q) = max(Mq) + max(N^T p) - p^T (M + N) q``; non-negative, and
    zero exactly when ``(p, q)`` is a Nash equilibrium.
    """
    row_values = game.row_action_values(q)
    col_values = game.col_action_values(p)
    bilinear = float(p @ (game.payoff_row + game.payoff_col) @ q)
    return float(row_values.max() + col_values.max() - bilinear)


def max_qubo_breakdown(game: BimatrixGame, p: np.ndarray, q: np.ndarray) -> ObjectiveBreakdown:
    """Exact values of the three MAX-QUBO components."""
    row_values = game.row_action_values(q)
    col_values = game.col_action_values(p)
    bilinear = float(p @ (game.payoff_row + game.payoff_col) @ q)
    return ObjectiveBreakdown(
        max_row_value=float(row_values.max()),
        max_col_value=float(col_values.max()),
        vmv_value=bilinear,
    )


class ObjectiveEvaluator(ABC):
    """Evaluates the MAX-QUBO objective for quantised strategy pairs."""

    @abstractmethod
    def evaluate(self, state: QuantizedStrategyPair) -> float:
        """Objective value (lower is better, zero at an equilibrium)."""

    def evaluate_batch(self, states: BatchedStrategyState) -> np.ndarray:
        """Objective values for a stacked batch of states, shape ``(B,)``.

        The default unstacks and calls :meth:`evaluate` per chain, so any
        custom evaluator works with the vectorized execution engine; the
        built-in evaluators override it with true array-level paths.
        """
        return np.array(
            [self.evaluate(states.state(index)) for index in range(states.batch_size)]
        )

    @property
    @abstractmethod
    def game(self) -> BimatrixGame:
        """The game whose objective is being evaluated."""

    def evaluate_breakdown(self, state: QuantizedStrategyPair) -> ObjectiveBreakdown:
        """The three objective components (default: exact recomputation)."""
        return max_qubo_breakdown(self.game, state.p, state.q)


class IdealEvaluator(ObjectiveEvaluator):
    """Exact (noise-free, infinite-precision) MAX-QUBO evaluation."""

    def __init__(self, game: BimatrixGame):
        self._game = game
        # Pre-compute the combined payoff for the bilinear term.
        self._combined = game.payoff_row + game.payoff_col

    @property
    def game(self) -> BimatrixGame:
        return self._game

    def evaluate(self, state: QuantizedStrategyPair) -> float:
        p = state.p
        q = state.q
        row_values = self._game.payoff_row @ q
        col_values = self._game.payoff_col.T @ p
        bilinear = float(p @ self._combined @ q)
        return float(row_values.max() + col_values.max() - bilinear)

    def evaluate_batch(self, states: BatchedStrategyState) -> np.ndarray:
        """Exact objectives for all chains as one stacked computation.

        ``max(M Q^T, axis=rows) + max(N^T P^T, axis=cols) - diag(P C Q^T)``
        evaluated as two matrix products plus one einsum over the whole
        ``(B, n)`` / ``(B, m)`` probability stack.
        """
        p = states.p
        q = states.q
        row_values = q @ self._game.payoff_row.T
        col_values = p @ self._game.payoff_col
        bilinear = np.einsum("bi,ij,bj->b", p, self._combined, q)
        return row_values.max(axis=1) + col_values.max(axis=1) - bilinear


class HardwareEvaluator(ObjectiveEvaluator):
    """MAX-QUBO evaluation through the FeFET bi-crossbar datapath.

    The evaluator owns a :class:`~repro.hardware.bicrossbar.BiCrossbar`
    configured for the game; every evaluation performs the two-phase
    computation (crossbar MV reads + WTA for the max terms, crossbar VMV
    reads for the bilinear term) including device variability, read noise
    and ADC quantisation.

    Note that the bi-crossbar operates on the *shifted* (non-negative)
    payoffs; shifting changes the objective by a constant only at fixed
    ``p``/``q`` sums, so the annealer's accept/reject decisions — which
    depend on objective differences — are unaffected.
    """

    def __init__(self, game: BimatrixGame, bicrossbar: BiCrossbar):
        expected = game.shape
        actual = bicrossbar.game.shape
        if expected != actual:
            raise ValueError(
                f"bicrossbar shape {actual} does not match game shape {expected}"
            )
        self._game = game
        self.bicrossbar = bicrossbar

    @property
    def game(self) -> BimatrixGame:
        return self._game

    @property
    def num_intervals(self) -> int:
        """The strategy quantisation of the underlying hardware."""
        return self.bicrossbar.num_intervals

    def evaluate(self, state: QuantizedStrategyPair) -> float:
        if state.num_intervals != self.bicrossbar.num_intervals:
            raise ValueError(
                f"state quantised with I={state.num_intervals} but hardware uses "
                f"I={self.bicrossbar.num_intervals}"
            )
        return self.bicrossbar.evaluate(state.p_counts, state.q_counts).objective

    def evaluate_breakdown(self, state: QuantizedStrategyPair) -> ObjectiveBreakdown:
        return self.bicrossbar.evaluate(state.p_counts, state.q_counts)

    def evaluate_batch(self, states: BatchedStrategyState) -> np.ndarray:
        """Objectives for all chains through the batched bi-crossbar path.

        Read noise is sampled and ADC quantisation applied over the whole
        chain batch in one pass, so hardware-in-the-loop sweeps scale the
        same way as the ideal evaluator.
        """
        if states.num_intervals != self.bicrossbar.num_intervals:
            raise ValueError(
                f"states quantised with I={states.num_intervals} but hardware uses "
                f"I={self.bicrossbar.num_intervals}"
            )
        return self.bicrossbar.evaluate_batch(states.p_counts, states.q_counts).objective


@dataclass(frozen=True)
class GridOptimum:
    """Result of exhaustively scanning the quantised strategy grid."""

    best_state: QuantizedStrategyPair
    best_objective: float
    num_states: int


def enumerate_grid_optimum(
    game: BimatrixGame, num_intervals: int, evaluator: Optional[ObjectiveEvaluator] = None
) -> GridOptimum:
    """Exhaustively minimise the MAX-QUBO objective over the strategy grid.

    Only practical for small games / coarse grids (the grid has
    ``C(I+n-1, n-1) * C(I+m-1, m-1)`` points); used in tests to verify
    that the annealer reaches the grid optimum.
    """
    from itertools import combinations_with_replacement

    evaluator = evaluator or IdealEvaluator(game)
    n, m = game.shape

    def compositions(total: int, parts: int):
        for dividers in combinations_with_replacement(range(parts), total):
            counts = np.zeros(parts, dtype=int)
            for index in dividers:
                counts[index] += 1
            yield counts

    best_state: Optional[QuantizedStrategyPair] = None
    best_objective = np.inf
    num_states = 0
    for p_counts in compositions(num_intervals, n):
        for q_counts in compositions(num_intervals, m):
            state = QuantizedStrategyPair(p_counts.copy(), q_counts.copy(), num_intervals)
            value = evaluator.evaluate(state)
            num_states += 1
            if value < best_objective:
                best_objective = value
                best_state = state
    assert best_state is not None  # the grid is never empty
    return GridOptimum(best_state=best_state, best_objective=float(best_objective), num_states=num_states)
