"""The MAX-QUBO transformation and its evaluators.

Sec. 3.1 of the paper converts the Mangasarian–Stone quadratic program
for Nash equilibria into the *lossless* MAX-QUBO form

    min_{p, q}  f(p, q) = max(Mq) + max(N^T p) - p^T (M + N) q        (Eq. 9)

with the simplex constraints enforced structurally.  The objective is
non-negative for every strategy pair and equals zero exactly at the Nash
equilibria, so minimising it (over the quantised strategy grid) searches
for equilibria without any slack variables or penalty weights.

Two evaluators are provided behind a common interface:

* :class:`IdealEvaluator` — exact floating-point evaluation, used for the
  large statistical sweeps and as the reference in tests;
* :class:`HardwareEvaluator` — evaluation through the FeFET bi-crossbar,
  WTA trees and ADCs (:class:`~repro.hardware.bicrossbar.BiCrossbar`),
  i.e. what the silicon would compute, with device variability and
  quantisation included.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.games.bimatrix import BimatrixGame
from repro.core.strategy import (
    BatchedStrategyState,
    QuantizedStrategyPair,
    TransferMoveBatch,
)
from repro.hardware.bicrossbar import BiCrossbar, ObjectiveBreakdown


def max_qubo_objective(game: BimatrixGame, p: np.ndarray, q: np.ndarray) -> float:
    """Exact MAX-QUBO objective value for probability vectors ``p, q``.

    ``f(p, q) = max(Mq) + max(N^T p) - p^T (M + N) q``; non-negative, and
    zero exactly when ``(p, q)`` is a Nash equilibrium.
    """
    row_values = game.row_action_values(q)
    col_values = game.col_action_values(p)
    bilinear = float(p @ (game.payoff_row + game.payoff_col) @ q)
    return float(row_values.max() + col_values.max() - bilinear)


def max_qubo_breakdown(game: BimatrixGame, p: np.ndarray, q: np.ndarray) -> ObjectiveBreakdown:
    """Exact values of the three MAX-QUBO components."""
    row_values = game.row_action_values(q)
    col_values = game.col_action_values(p)
    bilinear = float(p @ (game.payoff_row + game.payoff_col) @ q)
    return ObjectiveBreakdown(
        max_row_value=float(row_values.max()),
        max_col_value=float(col_values.max()),
        vmv_value=bilinear,
    )


class ObjectiveEvaluator(ABC):
    """Evaluates the MAX-QUBO objective for quantised strategy pairs."""

    @abstractmethod
    def evaluate(self, state: QuantizedStrategyPair) -> float:
        """Objective value (lower is better, zero at an equilibrium)."""

    def evaluate_batch(self, states: BatchedStrategyState) -> np.ndarray:
        """Objective values for a stacked batch of states, shape ``(B,)``.

        The default unstacks and calls :meth:`evaluate` per chain, so any
        custom evaluator works with the vectorized execution engine; the
        built-in evaluators override it with true array-level paths.
        """
        return np.array(
            [self.evaluate(states.state(index)) for index in range(states.batch_size)]
        )

    @property
    @abstractmethod
    def game(self) -> BimatrixGame:
        """The game whose objective is being evaluated."""

    def evaluate_breakdown(self, state: QuantizedStrategyPair) -> ObjectiveBreakdown:
        """The three objective components (default: exact recomputation)."""
        return max_qubo_breakdown(self.game, state.p, state.q)

    def supports_incremental(self) -> bool:
        """Whether :meth:`incremental_state` is available.

        Incremental (delta) evaluation computes candidate energies for
        interval-transfer moves via rank-1 cache updates instead of full
        ``O(B·n·m)`` products.  The base class answers ``False`` —
        custom evaluators and the hardware path (which performs physical
        two-phase reads of the whole objective) keep the full-evaluation
        code path.
        """
        return False

    def incremental_state(self, states: BatchedStrategyState) -> "IncrementalIdealState":
        """Build the delta-evaluation cache for a stacked batch of states."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental evaluation"
        )


class IdealEvaluator(ObjectiveEvaluator):
    """Exact (noise-free, infinite-precision) MAX-QUBO evaluation."""

    def __init__(self, game: BimatrixGame):
        self._game = game
        # Pre-compute the combined payoff for the bilinear term.
        self._combined = game.payoff_row + game.payoff_col

    @property
    def game(self) -> BimatrixGame:
        return self._game

    def evaluate(self, state: QuantizedStrategyPair) -> float:
        p = state.p
        q = state.q
        row_values = self._game.payoff_row @ q
        col_values = self._game.payoff_col.T @ p
        bilinear = float(p @ self._combined @ q)
        return float(row_values.max() + col_values.max() - bilinear)

    def evaluate_batch(self, states: BatchedStrategyState) -> np.ndarray:
        """Exact objectives for all chains as one stacked computation.

        ``max(M Q^T, axis=rows) + max(N^T P^T, axis=cols) - diag(P C Q^T)``
        evaluated as two matrix products plus one einsum over the whole
        ``(B, n)`` / ``(B, m)`` probability stack.
        """
        p = states.p
        q = states.q
        row_values = q @ self._game.payoff_row.T
        col_values = p @ self._game.payoff_col
        bilinear = np.einsum("bi,ij,bj->b", p, self._combined, q)
        return row_values.max(axis=1) + col_values.max(axis=1) - bilinear

    def supports_incremental(self) -> bool:
        return True

    def incremental_state(self, states: BatchedStrategyState) -> "IncrementalIdealState":
        return IncrementalIdealState(self._game, states, combined=self._combined)


class IncrementalIdealState:
    """Per-chain action-value caches for O(n+m) delta evaluation.

    The MAX-QUBO objective of chain ``b`` is

        ``f = max(M q) + max(N^T p) - p^T (M + N) q``

    and an interval-transfer move only shifts ``1/I`` of probability mass
    between two actions of one player, so the candidate objective is a
    rank-1 perturbation of cached quantities rather than a fresh
    ``O(n·m)`` product.  The cache holds, for every chain:

    * ``row_values = M q``  (``(B, n)``) and its max;
    * ``col_values = N^T p``  (``(B, m)``) and its max;
    * ``bilinear = p^T C q`` with ``C = M + N``;
    * the helper products ``u = p^T C`` (``(B, m)``) and ``w = C q``
      (``(B, n)``) that turn the bilinear update into two gathers.

    A column-player move ``j -> k`` updates ``row_values`` by
    ``(M[:, k] − M[:, j]) / I``, leaves ``col_values`` untouched and
    shifts the bilinear term by ``(u[k] − u[j]) / I``; the row player is
    symmetric through ``col_values``/``w``.  :meth:`resync` recomputes
    everything from the counts with the same full-product expressions as
    :meth:`IdealEvaluator.evaluate_batch`, bounding float drift on long
    runs (call it every K iterations).

    With payoffs and ``1/I`` exactly representable (integer payoffs,
    power-of-two ``I``) every update is exact dyadic arithmetic, so the
    delta path is bit-identical to full evaluation; otherwise it agrees
    to float rounding and the periodic resync keeps the drift bounded.
    """

    def __init__(
        self,
        game: BimatrixGame,
        states: BatchedStrategyState,
        combined: Optional[np.ndarray] = None,
    ) -> None:
        if combined is None:
            combined = game.payoff_row + game.payoff_col
        self._row_payoff = np.ascontiguousarray(game.payoff_row)
        #: Row ``k`` is ``M[:, k]`` — the row-values delta of a column move.
        self._row_payoff_cols = np.ascontiguousarray(game.payoff_row.T)
        #: Row ``j`` is ``N[j, :]`` — the col-values delta of a row move.
        self._col_payoff_rows = np.ascontiguousarray(game.payoff_col)
        self._combined_rows = np.ascontiguousarray(combined)
        self._combined_cols = np.ascontiguousarray(combined.T)
        self._inv_intervals = 1.0 / states.num_intervals
        self._staged_moves: Optional[TransferMoveBatch] = None
        self.resync(states)

    def resync(self, states: BatchedStrategyState) -> np.ndarray:
        """Rebuild every cache from ``states`` via full products.

        Returns the refreshed energies; uses the exact expressions of
        :meth:`IdealEvaluator.evaluate_batch` so a resynced cache and a
        full evaluation agree bit-for-bit.
        """
        p = states.p
        q = states.q
        self.row_values = q @ self._row_payoff.T
        self.col_values = p @ self._col_payoff_rows
        self.bilinear = np.einsum("bi,ij,bj->b", p, self._combined_rows, q)
        self.u = p @ self._combined_rows
        self.w = q @ self._combined_cols
        self.row_max = self.row_values.max(axis=1)
        self.col_max = self.col_values.max(axis=1)
        self._staged_moves = None
        return self.energies()

    def energies(self) -> np.ndarray:
        """Current per-chain objectives from the cached components."""
        return self.row_max + self.col_max - self.bilinear

    def candidate_energies(self, moves: TransferMoveBatch) -> np.ndarray:
        """Objective of every chain's candidate state, via rank-1 updates.

        Stages the per-move cache deltas for a following :meth:`commit`;
        chains without a move (an action-starved player) keep their
        current objective.
        """
        inv = self._inv_intervals
        cand_row_max = self.row_max.copy()
        cand_col_max = self.col_max.copy()
        cand_bilinear = self.bilinear.copy()
        rows, source, target = moves.q_rows, moves.q_source, moves.q_target
        if rows.size:
            self._d_row = (self._row_payoff_cols[target] - self._row_payoff_cols[source]) * inv
            cand_row_max[rows] = (self.row_values[rows] + self._d_row).max(axis=1)
            cand_bilinear[rows] += (self.u[rows, target] - self.u[rows, source]) * inv
        rows, source, target = moves.p_rows, moves.p_source, moves.p_target
        if rows.size:
            self._d_col = (self._col_payoff_rows[target] - self._col_payoff_rows[source]) * inv
            cand_col_max[rows] = (self.col_values[rows] + self._d_col).max(axis=1)
            cand_bilinear[rows] += (self.w[rows, target] - self.w[rows, source]) * inv
        self._staged_moves = moves
        self._cand_row_max = cand_row_max
        self._cand_col_max = cand_col_max
        self._cand_bilinear = cand_bilinear
        return cand_row_max + cand_col_max - cand_bilinear

    def commit(self, accept: np.ndarray) -> None:
        """Fold the staged candidate caches into the accepted chains.

        The helper-product deltas (``w`` for column moves, ``u`` for row
        moves) are only needed for chains that actually move, so they are
        computed here, on the accepted subset, rather than for every
        proposal.
        """
        moves = self._staged_moves
        if moves is None:
            raise RuntimeError("commit() without a staged candidate_energies() call")
        inv = self._inv_intervals
        rows = moves.q_rows
        if rows.size:
            keep = accept[rows]
            accepted_rows = rows[keep]
            if accepted_rows.size:
                source = moves.q_source[keep]
                target = moves.q_target[keep]
                self.row_values[accepted_rows] += self._d_row[keep]
                self.w[accepted_rows] += (
                    self._combined_cols[target] - self._combined_cols[source]
                ) * inv
        rows = moves.p_rows
        if rows.size:
            keep = accept[rows]
            accepted_rows = rows[keep]
            if accepted_rows.size:
                source = moves.p_source[keep]
                target = moves.p_target[keep]
                self.col_values[accepted_rows] += self._d_col[keep]
                self.u[accepted_rows] += (
                    self._combined_rows[target] - self._combined_rows[source]
                ) * inv
        np.copyto(self.row_max, self._cand_row_max, where=accept)
        np.copyto(self.col_max, self._cand_col_max, where=accept)
        np.copyto(self.bilinear, self._cand_bilinear, where=accept)
        self._staged_moves = None


class StackedIncrementalState:
    """Delta-evaluation caches for chains of *several* same-shape games.

    The batched dispatch path fuses the SA chains of many independent
    games (one scheduler job each) into a single kernel launch, so the
    per-iteration Python overhead of the fused loop is paid once per
    *batch* instead of once per job.  This class is the stacked
    counterpart of :class:`IncrementalIdealState`: chain ``b`` belongs to
    game ``chain_games[b]`` and every payoff gather indexes a ``(K, n,
    m)``-shaped stack with that per-chain game index.

    Bit-identity contract: a chain of this stacked state advances
    *flip-for-flip* identically to the same chain run solo through
    :class:`IncrementalIdealState`.

    * the per-iteration math (:meth:`candidate_energies`,
      :meth:`commit`) is purely per-chain — elementwise arithmetic,
      row gathers and row-wise maxima — so the values of chain ``b``
      depend only on chain ``b``'s rows and its own game's matrices;
    * the summation-order-sensitive reductions (the matmuls/einsum of
      :meth:`resync`) are computed per contiguous game block over the
      exact expressions (and the exact array layouts — a leading-axis
      slice of a C-contiguous stack is itself C-contiguous) that the
      solo cache uses, so resynced caches match the solo ones
      bit-for-bit as well.

    ``chain_games`` must be sorted (chains of one game form one
    contiguous block); the launch builder guarantees this by
    construction.
    """

    def __init__(
        self,
        games: "Sequence[BimatrixGame]",
        chain_games: np.ndarray,
        states: BatchedStrategyState,
        combined: Optional["Sequence[np.ndarray]"] = None,
    ) -> None:
        if not games:
            raise ValueError("need at least one game")
        shape = games[0].shape
        for game in games[1:]:
            if game.shape != shape:
                raise ValueError(
                    f"all stacked games must share one shape, got {shape} and {game.shape}"
                )
        if combined is None:
            combined = [game.payoff_row + game.payoff_col for game in games]
        # np.stack always yields fresh C-contiguous stacks, and the cols
        # variants are built as one vectorised transpose-copy of the
        # stack rather than per-game copies.  All four stay C-contiguous:
        # the per-iteration gathers want contiguous rows, and layout
        # selects the BLAS path in resync, which must match the solo
        # cache exactly.
        self._row_payoff = np.stack([game.payoff_row for game in games])
        self._row_payoff_cols = np.ascontiguousarray(
            self._row_payoff.transpose(0, 2, 1)
        )
        self._col_payoff_rows = np.stack([game.payoff_col for game in games])
        self._combined_rows = np.stack(list(combined))
        self._combined_cols = np.ascontiguousarray(
            self._combined_rows.transpose(0, 2, 1)
        )
        chain_games = np.asarray(chain_games, dtype=np.int64)
        if chain_games.shape != (states.batch_size,):
            raise ValueError(
                f"chain_games must have shape ({states.batch_size},), "
                f"got {chain_games.shape}"
            )
        if np.any(np.diff(chain_games) < 0):
            raise ValueError("chain_games must be sorted (contiguous per-game blocks)")
        if chain_games.size and not (
            0 <= chain_games[0] and chain_games[-1] < len(games)
        ):
            raise ValueError("chain_games indexes outside the game stack")
        self._chain_games = chain_games
        # Flattened (game*actions, actions) gather views plus per-chain
        # flat bases: the per-iteration gathers pick [game, action]
        # rows, and one flat first-axis index selects the exact same
        # elements as 2-D advanced indexing at measurably lower cost.
        num_rows, num_cols = shape
        self._flat_row_payoff_cols = self._row_payoff_cols.reshape(-1, num_rows)
        self._flat_col_payoff_rows = self._col_payoff_rows.reshape(-1, num_cols)
        self._flat_combined_rows = self._combined_rows.reshape(-1, num_cols)
        self._flat_combined_cols = self._combined_cols.reshape(-1, num_rows)
        self._chain_base_rows = chain_games * num_rows
        self._chain_base_cols = chain_games * num_cols
        # Contiguous chain slice of every game block (possibly empty).
        starts = np.searchsorted(chain_games, np.arange(len(games)), side="left")
        stops = np.searchsorted(chain_games, np.arange(len(games)), side="right")
        self._blocks = [slice(int(a), int(b)) for a, b in zip(starts, stops)]
        self._inv_intervals = 1.0 / states.num_intervals
        self._staged_moves: Optional[TransferMoveBatch] = None
        self.resync(states)

    def resync(self, states: BatchedStrategyState) -> np.ndarray:
        """Rebuild every cache per game block via the solo full products."""
        p = states.p
        q = states.q
        batch_size = p.shape[0]
        n = self._row_payoff.shape[1]
        m = self._row_payoff.shape[2]
        self.row_values = np.empty((batch_size, n))
        self.col_values = np.empty((batch_size, m))
        self.bilinear = np.empty(batch_size)
        self.u = np.empty((batch_size, m))
        self.w = np.empty((batch_size, n))
        for index, block in enumerate(self._blocks):
            if block.start == block.stop:
                continue
            # The exact expressions (and layouts) of
            # IncrementalIdealState.resync, applied to this game's block.
            self.row_values[block] = q[block] @ self._row_payoff[index].T
            self.col_values[block] = p[block] @ self._col_payoff_rows[index]
            self.bilinear[block] = np.einsum(
                "bi,ij,bj->b", p[block], self._combined_rows[index], q[block]
            )
            self.u[block] = p[block] @ self._combined_rows[index]
            self.w[block] = q[block] @ self._combined_cols[index]
        self.row_max = self.row_values.max(axis=1)
        self.col_max = self.col_values.max(axis=1)
        self._staged_moves = None
        return self.energies()

    def energies(self) -> np.ndarray:
        """Current per-chain objectives from the cached components."""
        return self.row_max + self.col_max - self.bilinear

    def candidate_energies(self, moves: TransferMoveBatch) -> np.ndarray:
        """Per-chain candidate objectives via game-indexed rank-1 updates."""
        inv = self._inv_intervals
        cand_row_max = self.row_max.copy()
        cand_col_max = self.col_max.copy()
        cand_bilinear = self.bilinear.copy()
        rows, source, target = moves.q_rows, moves.q_source, moves.q_target
        if rows.size:
            flat = self._flat_row_payoff_cols
            base = self._chain_base_cols[rows]
            self._d_row = (flat[base + target] - flat[base + source]) * inv
            cand_row_max[rows] = (self.row_values[rows] + self._d_row).max(axis=1)
            u_flat = self.u.reshape(-1)
            u_base = rows * self.u.shape[1]
            cand_bilinear[rows] += (u_flat[u_base + target] - u_flat[u_base + source]) * inv
        rows, source, target = moves.p_rows, moves.p_source, moves.p_target
        if rows.size:
            flat = self._flat_col_payoff_rows
            base = self._chain_base_rows[rows]
            self._d_col = (flat[base + target] - flat[base + source]) * inv
            cand_col_max[rows] = (self.col_values[rows] + self._d_col).max(axis=1)
            w_flat = self.w.reshape(-1)
            w_base = rows * self.w.shape[1]
            cand_bilinear[rows] += (w_flat[w_base + target] - w_flat[w_base + source]) * inv
        self._staged_moves = moves
        self._cand_row_max = cand_row_max
        self._cand_col_max = cand_col_max
        self._cand_bilinear = cand_bilinear
        return cand_row_max + cand_col_max - cand_bilinear

    def commit(self, accept: np.ndarray) -> None:
        """Fold the staged candidate caches into the accepted chains."""
        moves = self._staged_moves
        if moves is None:
            raise RuntimeError("commit() without a staged candidate_energies() call")
        inv = self._inv_intervals
        rows = moves.q_rows
        if rows.size:
            keep = accept[rows]
            accepted_rows = rows[keep]
            if accepted_rows.size:
                source = moves.q_source[keep]
                target = moves.q_target[keep]
                flat = self._flat_combined_cols
                base = self._chain_base_cols[accepted_rows]
                self.row_values[accepted_rows] += self._d_row[keep]
                self.w[accepted_rows] += (flat[base + target] - flat[base + source]) * inv
        rows = moves.p_rows
        if rows.size:
            keep = accept[rows]
            accepted_rows = rows[keep]
            if accepted_rows.size:
                source = moves.p_source[keep]
                target = moves.p_target[keep]
                flat = self._flat_combined_rows
                base = self._chain_base_rows[accepted_rows]
                self.col_values[accepted_rows] += self._d_col[keep]
                self.u[accepted_rows] += (flat[base + target] - flat[base + source]) * inv
        np.copyto(self.row_max, self._cand_row_max, where=accept)
        np.copyto(self.col_max, self._cand_col_max, where=accept)
        np.copyto(self.bilinear, self._cand_bilinear, where=accept)
        self._staged_moves = None

    @classmethod
    def from_evaluators(
        cls,
        evaluators: "Sequence[IdealEvaluator]",
        chain_games: np.ndarray,
        states: BatchedStrategyState,
    ) -> "StackedIncrementalState":
        """Build the stacked cache from per-game :class:`IdealEvaluator` objects.

        Reuses each evaluator's precomputed combined payoff so the
        bilinear matrices are the *same floats* the solo incremental
        cache would use.
        """
        return cls(
            [evaluator.game for evaluator in evaluators],
            chain_games,
            states,
            combined=[evaluator._combined for evaluator in evaluators],
        )


class HardwareEvaluator(ObjectiveEvaluator):
    """MAX-QUBO evaluation through the FeFET bi-crossbar datapath.

    The evaluator owns a :class:`~repro.hardware.bicrossbar.BiCrossbar`
    configured for the game; every evaluation performs the two-phase
    computation (crossbar MV reads + WTA for the max terms, crossbar VMV
    reads for the bilinear term) including device variability, read noise
    and ADC quantisation.

    Note that the bi-crossbar operates on the *shifted* (non-negative)
    payoffs; shifting changes the objective by a constant only at fixed
    ``p``/``q`` sums, so the annealer's accept/reject decisions — which
    depend on objective differences — are unaffected.
    """

    def __init__(self, game: BimatrixGame, bicrossbar: BiCrossbar):
        expected = game.shape
        actual = bicrossbar.game.shape
        if expected != actual:
            raise ValueError(
                f"bicrossbar shape {actual} does not match game shape {expected}"
            )
        self._game = game
        self.bicrossbar = bicrossbar

    @property
    def game(self) -> BimatrixGame:
        return self._game

    @property
    def num_intervals(self) -> int:
        """The strategy quantisation of the underlying hardware."""
        return self.bicrossbar.num_intervals

    def evaluate(self, state: QuantizedStrategyPair) -> float:
        if state.num_intervals != self.bicrossbar.num_intervals:
            raise ValueError(
                f"state quantised with I={state.num_intervals} but hardware uses "
                f"I={self.bicrossbar.num_intervals}"
            )
        return self.bicrossbar.evaluate(state.p_counts, state.q_counts).objective

    def evaluate_breakdown(self, state: QuantizedStrategyPair) -> ObjectiveBreakdown:
        return self.bicrossbar.evaluate(state.p_counts, state.q_counts)

    def evaluate_batch(self, states: BatchedStrategyState) -> np.ndarray:
        """Objectives for all chains through the batched bi-crossbar path.

        Read noise is sampled and ADC quantisation applied over the whole
        chain batch in one pass, so hardware-in-the-loop sweeps scale the
        same way as the ideal evaluator.
        """
        if states.num_intervals != self.bicrossbar.num_intervals:
            raise ValueError(
                f"states quantised with I={states.num_intervals} but hardware uses "
                f"I={self.bicrossbar.num_intervals}"
            )
        return self.bicrossbar.evaluate_batch(states.p_counts, states.q_counts).objective


@dataclass(frozen=True)
class GridOptimum:
    """Result of exhaustively scanning the quantised strategy grid."""

    best_state: QuantizedStrategyPair
    best_objective: float
    num_states: int


def composition_grid(total: int, parts: int) -> np.ndarray:
    """All compositions of ``total`` into ``parts`` as a stacked count array.

    Shape ``(C(total+parts-1, parts-1), parts)``, every row summing to
    ``total``, in the deterministic enumeration order the scalar grid
    scan used (so tie-breaking in :func:`enumerate_grid_optimum` is
    unchanged).
    """
    from itertools import combinations_with_replacement

    dividers = np.array(
        list(combinations_with_replacement(range(parts), total)), dtype=np.int64
    ).reshape(-1, total)
    grid = np.zeros((dividers.shape[0], parts), dtype=int)
    rows = np.repeat(np.arange(dividers.shape[0]), total)
    np.add.at(grid, (rows, dividers.ravel()), 1)
    return grid


def enumerate_grid_optimum(
    game: BimatrixGame,
    num_intervals: int,
    evaluator: Optional[ObjectiveEvaluator] = None,
    chunk_size: int = 4096,
) -> GridOptimum:
    """Exhaustively minimise the MAX-QUBO objective over the strategy grid.

    Only practical for small games / coarse grids (the grid has
    ``C(I+n-1, n-1) * C(I+m-1, m-1)`` points); used in tests to verify
    that the annealer reaches the grid optimum.

    The scan stacks the composition grids of both players and scores the
    cross product through :meth:`ObjectiveEvaluator.evaluate_batch` in
    chunks of ``chunk_size`` states, so the built-in evaluators process
    the whole grid as a handful of array operations (custom evaluators
    without a batch override fall back to per-state evaluation inside
    ``evaluate_batch`` and still see identical results).  The first grid
    point attaining the minimum — in row-player-major order, as the old
    per-state loop visited them — is returned.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    evaluator = evaluator or IdealEvaluator(game)
    n, m = game.shape
    p_grid = composition_grid(num_intervals, n)
    q_grid = composition_grid(num_intervals, m)
    num_q = q_grid.shape[0]
    num_states = p_grid.shape[0] * num_q
    best_objective = np.inf
    best_flat = 0
    for start in range(0, num_states, chunk_size):
        flat = np.arange(start, min(start + chunk_size, num_states))
        states = BatchedStrategyState(
            p_grid[flat // num_q], q_grid[flat % num_q], num_intervals
        )
        values = np.asarray(evaluator.evaluate_batch(states), dtype=float)
        index = int(np.argmin(values))
        if values[index] < best_objective:
            best_objective = float(values[index])
            best_flat = int(flat[index])
    best_state = QuantizedStrategyPair(
        p_grid[best_flat // num_q].copy(), q_grid[best_flat % num_q].copy(), num_intervals
    )
    return GridOptimum(
        best_state=best_state, best_objective=float(best_objective), num_states=num_states
    )
