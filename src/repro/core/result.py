"""Result types returned by the C-Nash solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.strategy import QuantizedStrategyPair
from repro.games.equilibrium import StrategyProfile


@dataclass
class SolverRunResult:
    """Outcome of a single C-Nash SA run.

    Attributes
    ----------
    best_state:
        The lowest-objective quantised strategy pair visited.
    best_objective:
        Its MAX-QUBO objective value (as seen by the evaluator used).
    is_equilibrium:
        Whether the best state is an epsilon-equilibrium of the game.
    classification:
        ``"pure"``, ``"mixed"`` or ``"error"`` (Fig. 8's categories).
    iterations:
        Number of SA iterations executed.
    iterations_to_best:
        Iteration index at which the best state was first reached (0 if
        the initial state was never improved upon).
    acceptance_rate:
        Fraction of proposed moves accepted.
    objective_history:
        Objective trajectory (only when history recording was enabled).
    """

    best_state: QuantizedStrategyPair
    best_objective: float
    is_equilibrium: bool
    classification: str
    iterations: int
    iterations_to_best: int
    acceptance_rate: float
    objective_history: List[float] = field(default_factory=list)

    @property
    def profile(self) -> StrategyProfile:
        """The best state as a strategy profile."""
        return self.best_state.to_profile()

    @property
    def success(self) -> bool:
        """Alias for :attr:`is_equilibrium` (the paper's success criterion)."""
        return self.is_equilibrium


@dataclass
class SolverBatchResult:
    """Aggregate of many independent SA runs on one game."""

    game_name: str
    runs: List[SolverRunResult]
    num_intervals: int
    wall_clock_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    @property
    def num_runs(self) -> int:
        """Number of runs in the batch."""
        return len(self.runs)

    @property
    def success_rate(self) -> float:
        """Fraction of runs that ended on an equilibrium (Table 1 metric)."""
        if not self.runs:
            return 0.0
        return sum(run.success for run in self.runs) / len(self.runs)

    @property
    def successful_profiles(self) -> List[StrategyProfile]:
        """Profiles of the successful runs (possibly with duplicates)."""
        return [run.profile for run in self.runs if run.success]

    def classification_fractions(self) -> dict:
        """Fractions of runs per classification (Fig. 8 metric)."""
        if not self.runs:
            return {"pure": 0.0, "mixed": 0.0, "error": 0.0}
        total = len(self.runs)
        fractions = {"pure": 0.0, "mixed": 0.0, "error": 0.0}
        for run in self.runs:
            fractions[run.classification] += 1.0
        return {key: value / total for key, value in fractions.items()}

    def mean_iterations_to_solution(self) -> Optional[float]:
        """Average iterations-to-best over the *successful* runs.

        Returns ``None`` when no run succeeded.  This is the quantity the
        hardware timing model converts into time-to-solution (Fig. 10).
        """
        successful = [run.iterations_to_best for run in self.runs if run.success]
        if not successful:
            return None
        return float(np.mean(successful))
