"""Result types returned by the C-Nash solver.

Both result types are JSON round-trippable (``to_dict`` / ``from_dict``)
so that batches can cross process and network boundaries — the service
layer (:mod:`repro.service`) ships shard results back from worker
processes and caches outcomes on disk in exactly this representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.strategy import QuantizedStrategyPair
from repro.games.equilibrium import StrategyProfile


@dataclass
class SolverRunResult:
    """Outcome of a single C-Nash SA run.

    Attributes
    ----------
    best_state:
        The lowest-objective quantised strategy pair visited.
    best_objective:
        Its MAX-QUBO objective value (as seen by the evaluator used).
    is_equilibrium:
        Whether the best state is an epsilon-equilibrium of the game.
    classification:
        ``"pure"``, ``"mixed"`` or ``"error"`` (Fig. 8's categories).
    iterations:
        Number of SA iterations executed.
    iterations_to_best:
        Iteration index at which the best state was first reached (0 if
        the initial state was never improved upon).
    acceptance_rate:
        Fraction of proposed moves accepted.
    objective_history:
        Objective trajectory (only when history recording was enabled).
    """

    best_state: QuantizedStrategyPair
    best_objective: float
    is_equilibrium: bool
    classification: str
    iterations: int
    iterations_to_best: int
    acceptance_rate: float
    objective_history: List[float] = field(default_factory=list)

    @property
    def profile(self) -> StrategyProfile:
        """The best state as a strategy profile."""
        return self.best_state.to_profile()

    @property
    def success(self) -> bool:
        """Alias for :attr:`is_equilibrium` (the paper's success criterion)."""
        return self.is_equilibrium

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "p_counts": [int(c) for c in self.best_state.p_counts],
            "q_counts": [int(c) for c in self.best_state.q_counts],
            "num_intervals": int(self.best_state.num_intervals),
            "best_objective": float(self.best_objective),
            "is_equilibrium": bool(self.is_equilibrium),
            "classification": self.classification,
            "iterations": int(self.iterations),
            "iterations_to_best": int(self.iterations_to_best),
            "acceptance_rate": float(self.acceptance_rate),
            "objective_history": [float(value) for value in self.objective_history],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SolverRunResult":
        """Reconstruct a run result from :meth:`to_dict` output."""
        state = QuantizedStrategyPair(
            p_counts=np.asarray(data["p_counts"], dtype=int),
            q_counts=np.asarray(data["q_counts"], dtype=int),
            num_intervals=int(data["num_intervals"]),
        )
        return cls(
            best_state=state,
            best_objective=float(data["best_objective"]),
            is_equilibrium=bool(data["is_equilibrium"]),
            classification=str(data["classification"]),
            iterations=int(data["iterations"]),
            iterations_to_best=int(data["iterations_to_best"]),
            acceptance_rate=float(data["acceptance_rate"]),
            objective_history=[float(value) for value in data.get("objective_history", [])],
        )


@dataclass
class SolverBatchResult:
    """Aggregate of many independent SA runs on one game."""

    game_name: str
    runs: List[SolverRunResult]
    num_intervals: int
    wall_clock_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    @property
    def num_runs(self) -> int:
        """Number of runs in the batch."""
        return len(self.runs)

    @property
    def success_rate(self) -> float:
        """Fraction of runs that ended on an equilibrium (Table 1 metric)."""
        if not self.runs:
            return 0.0
        return sum(run.success for run in self.runs) / len(self.runs)

    @property
    def successful_profiles(self) -> List[StrategyProfile]:
        """Profiles of the successful runs (possibly with duplicates)."""
        return [run.profile for run in self.runs if run.success]

    def classification_fractions(self) -> dict:
        """Fractions of runs per classification (Fig. 8 metric)."""
        if not self.runs:
            return {"pure": 0.0, "mixed": 0.0, "error": 0.0}
        total = len(self.runs)
        fractions = {"pure": 0.0, "mixed": 0.0, "error": 0.0}
        for run in self.runs:
            fractions[run.classification] += 1.0
        return {key: value / total for key, value in fractions.items()}

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "game_name": self.game_name,
            "num_intervals": int(self.num_intervals),
            "wall_clock_seconds": float(self.wall_clock_seconds),
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SolverBatchResult":
        """Reconstruct a batch from :meth:`to_dict` output."""
        return cls(
            game_name=str(data["game_name"]),
            runs=[SolverRunResult.from_dict(run) for run in data["runs"]],
            num_intervals=int(data["num_intervals"]),
            wall_clock_seconds=float(data.get("wall_clock_seconds", 0.0)),
        )

    @classmethod
    def merge(cls, batches: Sequence["SolverBatchResult"]) -> "SolverBatchResult":
        """Concatenate shard batches of one game into a single batch.

        The service layer shards a ``num_runs=N`` request across worker
        processes and merges the per-shard batches back together; run
        order follows shard order, so a fixed shard plan gives a merged
        batch independent of how many workers executed it.  Wall-clock
        times are summed (total compute, not the parallel span).
        """
        batches = list(batches)
        if not batches:
            raise ValueError("cannot merge an empty sequence of batches")
        first = batches[0]
        for batch in batches[1:]:
            if batch.game_name != first.game_name:
                raise ValueError(
                    f"cannot merge batches of different games: "
                    f"{first.game_name!r} vs {batch.game_name!r}"
                )
            if batch.num_intervals != first.num_intervals:
                raise ValueError(
                    f"cannot merge batches with different num_intervals: "
                    f"{first.num_intervals} vs {batch.num_intervals}"
                )
        runs: List[SolverRunResult] = []
        for batch in batches:
            runs.extend(batch.runs)
        return cls(
            game_name=first.game_name,
            runs=runs,
            num_intervals=first.num_intervals,
            wall_clock_seconds=float(sum(batch.wall_clock_seconds for batch in batches)),
        )

    def mean_iterations_to_solution(self) -> Optional[float]:
        """Average iterations-to-best over the *successful* runs.

        Returns ``None`` when no run succeeded.  This is the quantity the
        hardware timing model converts into time-to-solution (Fig. 10).
        """
        successful = [run.iterations_to_best for run in self.runs if run.success]
        if not successful:
            return None
        return float(np.mean(successful))
