"""Minor-embedding model for the quantum-annealer baselines.

Real D-Wave machines have sparse qubit-connectivity graphs (Chimera for
the 2000Q, Pegasus for Advantage), so a dense S-QUBO problem must be
*minor-embedded*: each logical variable becomes a chain of physical
qubits coupled ferromagnetically.  Long chains dilute the programmable
coupling range and break more easily, which is the physical origin of the
degradation the baseline solver models.

This module builds simplified Chimera/Pegasus-like hardware graphs with
networkx, performs a greedy chain-growth embedding of a dense problem
graph, and reports the chain-length statistics that
:class:`repro.baselines.dwave_like.DWaveLikeSolver` can use instead of
its closed-form connectivity heuristic.

The embedder is deliberately simple: it grows chains forward only (no
rip-up/reroute), so on the sparse Chimera skeleton it handles cliques up
to roughly K6 — enough to calibrate the chain-length trends the baseline
degradation model needs.  Denser problems embed on the Pegasus-like
graph, or fall back to the closed-form
:meth:`~repro.baselines.machines.AnnealerProfile.embedding_overhead`
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

from repro.baselines.machines import AnnealerProfile
from repro.utils.rng import SeedLike, as_generator


def chimera_graph(rows: int = 4, columns: int = 4, shore_size: int = 4) -> nx.Graph:
    """A Chimera-style hardware graph (grid of complete bipartite unit cells).

    Each unit cell is a K_{shore,shore}; horizontal shores connect to the
    neighbouring cell in the same row, vertical shores to the cell below.
    This matches the structure (and degree ~6) of the D-Wave 2000Q family
    without modelling fabrication defects.
    """
    if rows < 1 or columns < 1 or shore_size < 1:
        raise ValueError("rows, columns and shore_size must all be >= 1")
    graph = nx.Graph()

    def node(row: int, column: int, shore: int, index: int) -> tuple:
        return (row, column, shore, index)

    for row in range(rows):
        for column in range(columns):
            # Intra-cell bipartite coupling.
            for i in range(shore_size):
                for j in range(shore_size):
                    graph.add_edge(node(row, column, 0, i), node(row, column, 1, j))
            # Inter-cell couplers.
            if column + 1 < columns:
                for i in range(shore_size):
                    graph.add_edge(node(row, column, 1, i), node(row, column + 1, 1, i))
            if row + 1 < rows:
                for i in range(shore_size):
                    graph.add_edge(node(row, column, 0, i), node(row + 1, column, 0, i))
    return graph


def pegasus_like_graph(rows: int = 4, columns: int = 4, shore_size: int = 4) -> nx.Graph:
    """A Pegasus-like hardware graph: Chimera plus extra odd/diagonal couplers.

    The real Pegasus topology has degree ~15; this approximation augments
    the Chimera skeleton with intra-shore ("odd") couplers and diagonal
    inter-cell couplers, raising the average degree into the same regime
    so that embeddings need the shorter chains the Advantage machine
    enjoys in practice.
    """
    graph = chimera_graph(rows, columns, shore_size)
    nodes = list(graph.nodes)
    for row, column, shore, index in nodes:
        # Odd couplers: adjacent qubits within the same shore.
        if index + 1 < shore_size:
            graph.add_edge((row, column, shore, index), (row, column, shore, index + 1))
        # Diagonal inter-cell couplers.
        if row + 1 < rows and column + 1 < columns:
            graph.add_edge((row, column, shore, index), (row + 1, column + 1, shore, index))
    return graph


def hardware_graph_for(profile: AnnealerProfile, scale: int = 4) -> nx.Graph:
    """Build the hardware graph matching a machine profile's topology family."""
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    if profile.connectivity_degree >= 10:
        return pegasus_like_graph(rows=scale, columns=scale)
    return chimera_graph(rows=scale, columns=scale)


@dataclass
class Embedding:
    """A minor embedding: logical variable -> chain of physical qubits."""

    chains: Dict[int, List] = field(default_factory=dict)

    @property
    def num_variables(self) -> int:
        """Number of embedded logical variables."""
        return len(self.chains)

    @property
    def chain_lengths(self) -> List[int]:
        """Length of every chain."""
        return [len(chain) for chain in self.chains.values()]

    @property
    def max_chain_length(self) -> int:
        """Longest chain (drives the coupling dilution)."""
        return max(self.chain_lengths, default=0)

    @property
    def average_chain_length(self) -> float:
        """Mean chain length."""
        lengths = self.chain_lengths
        return float(np.mean(lengths)) if lengths else 0.0

    @property
    def total_physical_qubits(self) -> int:
        """Total number of physical qubits used."""
        return int(sum(self.chain_lengths))

    def is_valid(self, problem: nx.Graph, hardware: nx.Graph) -> bool:
        """Check chain connectivity and coverage of every problem edge."""
        used = set()
        for chain in self.chains.values():
            if not chain:
                return False
            if used.intersection(chain):
                return False
            used.update(chain)
            if len(chain) > 1 and not nx.is_connected(hardware.subgraph(chain)):
                return False
        for u, v in problem.edges:
            if u not in self.chains or v not in self.chains:
                return False
            if not any(
                hardware.has_edge(a, b) for a in self.chains[u] for b in self.chains[v]
            ):
                return False
        return True


class EmbeddingError(RuntimeError):
    """Raised when the greedy embedder cannot place the problem."""


def _connect_chains(
    hardware: nx.Graph,
    free: set,
    growing_chain: List,
    fixed_chain: List,
    max_chain_length: int,
) -> bool:
    """Grow ``growing_chain`` through free qubits until it touches ``fixed_chain``.

    Returns ``True`` on success (``growing_chain`` and ``free`` are updated
    in place) and ``False`` when no route exists or the chain-length budget
    would be exceeded.
    """
    target_qubits = {
        q for qubit in fixed_chain for q in hardware.neighbors(qubit) if q in free
    }
    if not target_qubits:
        return False
    allowed = free | set(growing_chain)
    subgraph = hardware.subgraph(allowed)
    paths = nx.multi_source_dijkstra_path(subgraph, set(growing_chain))
    reachable = [q for q in target_qubits if q in paths]
    if not reachable:
        return False
    best_target = min(reachable, key=lambda q: len(paths[q]))
    extension = [q for q in paths[best_target] if q not in growing_chain]
    if len(growing_chain) + len(extension) > max_chain_length:
        return False
    for qubit in extension:
        growing_chain.append(qubit)
        free.discard(qubit)
    return True


def greedy_embed(
    problem: nx.Graph,
    hardware: nx.Graph,
    seed: SeedLike = None,
    max_chain_length: int = 64,
) -> Embedding:
    """Greedy chain-growth minor embedding.

    Variables are processed in decreasing-degree order; each is assigned a
    chain grown (breadth-first over free qubits) until it touches the
    chain of every already-embedded neighbour.  This is not minimal, but
    it produces the qualitative chain-length growth with problem density
    that the baseline degradation model needs, with chains verified by
    :meth:`Embedding.is_valid`.
    """
    rng = as_generator(seed)
    if problem.number_of_nodes() == 0:
        return Embedding()
    if problem.number_of_nodes() > hardware.number_of_nodes():
        raise EmbeddingError(
            f"problem has {problem.number_of_nodes()} variables but hardware only "
            f"{hardware.number_of_nodes()} qubits"
        )
    free = set(hardware.nodes)
    chains: Dict[int, List] = {}
    order = sorted(problem.nodes, key=lambda node: -problem.degree[node])

    for variable in order:
        embedded_neighbors = [n for n in problem.neighbors(variable) if n in chains]
        # Seed the chain at a free qubit, preferring one adjacent to a neighbour chain.
        candidates = []
        for neighbor in embedded_neighbors:
            for qubit in chains[neighbor]:
                candidates.extend(q for q in hardware.neighbors(qubit) if q in free)
        if not candidates:
            candidates = list(free)
        if not candidates:
            raise EmbeddingError("ran out of free qubits while embedding")
        start = candidates[int(rng.integers(len(candidates)))]
        chain = [start]
        free.discard(start)

        def chain_touches(neighbor: int) -> bool:
            return any(
                hardware.has_edge(a, b) for a in chain for b in chains[neighbor]
            )

        remaining = [n for n in embedded_neighbors if not chain_touches(n)]
        while remaining:
            if len(chain) >= max_chain_length:
                raise EmbeddingError(
                    f"chain for variable {variable} exceeded {max_chain_length} qubits"
                )
            # Route through free qubits so the two chains become adjacent.
            # Prefer growing the new variable's chain towards the neighbour's
            # chain; if the neighbour's chain has no free qubits around it
            # (it is boxed in by other chains), grow the neighbour's chain
            # towards this one instead.
            target_neighbor = remaining[0]
            grown = _connect_chains(hardware, free, chain, chains[target_neighbor], max_chain_length)
            if not grown:
                grown = _connect_chains(
                    hardware, free, chains[target_neighbor], chain, max_chain_length
                )
            if not grown:
                raise EmbeddingError(f"cannot grow chain for variable {variable}")
            remaining = [n for n in embedded_neighbors if not chain_touches(n)]
        chains[variable] = chain

    embedding = Embedding(chains=chains)
    if not embedding.is_valid(problem, hardware):
        raise EmbeddingError("greedy embedding failed validation")
    return embedding


def embed_dense_problem(
    num_variables: int,
    profile: AnnealerProfile,
    seed: SeedLike = None,
    scale: Optional[int] = None,
    max_attempts: int = 8,
) -> Embedding:
    """Embed a fully-connected problem of ``num_variables`` onto a machine.

    Used to calibrate the chain-length-based degradation of
    :class:`~repro.baselines.dwave_like.DWaveLikeSolver`: denser problems
    and sparser topologies produce longer chains.  The greedy embedder has
    no backtracking, so unlucky qubit choices are retried with fresh seeds
    and, if needed, a larger hardware lattice.
    """
    if num_variables < 1:
        raise ValueError(f"num_variables must be >= 1, got {num_variables}")
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    problem = nx.complete_graph(num_variables)
    base_scale = scale if scale is not None else max(3, int(np.ceil(num_variables / 3)))
    rng = as_generator(seed)
    last_error: Optional[EmbeddingError] = None
    for attempt in range(max_attempts):
        attempt_scale = base_scale + attempt // 2
        hardware = hardware_graph_for(profile, scale=attempt_scale)
        try:
            return greedy_embed(problem, hardware, seed=rng)
        except EmbeddingError as error:
            last_error = error
    assert last_error is not None
    raise last_error
