"""D-Wave-like baseline Nash solvers over the S-QUBO formulation.

The paper's baselines run the slack-QUBO formulation on D-Wave quantum
annealers.  Without access to those machines, this module provides a
*simulated annealer* baseline that reproduces the relevant behaviour:

* it solves the same lossy S-QUBO formulation (pure strategies only,
  slack variables, penalty weights);
* it degrades the QUBO coefficients the way sparse-connectivity analog
  hardware does — quantising couplings to the machine's effective
  precision and adding chain-length-dependent control noise — using the
  machine profiles of :mod:`repro.baselines.machines`;
* its per-sample timing follows the machine profile, so time-to-solution
  comparisons (Fig. 10) use realistic baseline costs.

The decoded samples are classified exactly like C-Nash output (error /
pure NE / mixed NE), noting that this formulation can *never* produce a
mixed solution — which is one of the paper's central points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.baselines.machines import AnnealerProfile, DWAVE_ADVANTAGE_4_1
from repro.games.bimatrix import BimatrixGame
from repro.games.equilibrium import EquilibriumSet, StrategyProfile, classify_profile
from repro.qubo.annealer import (
    BinaryAnnealerConfig,
    BinaryAnnealResult,
    anneal_qubo,
    anneal_qubo_batch,
)
from repro.qubo.model import QuboModel
from repro.qubo.s_qubo import SQuboFormulation, SQuboWeights, build_s_qubo
from repro.utils.rng import SeedLike, as_generator, spawn_generators


@dataclass
class BaselineRunResult:
    """Outcome of one baseline sample (one anneal-and-read cycle)."""

    profile: Optional[StrategyProfile]
    feasible: bool
    is_equilibrium: bool
    classification: str
    energy: float

    @property
    def success(self) -> bool:
        """Whether the sample decoded to a Nash equilibrium."""
        return self.is_equilibrium


@dataclass
class BaselineBatchResult:
    """Aggregate of many baseline samples on one game."""

    game_name: str
    solver_name: str
    runs: List[BaselineRunResult]
    wall_clock_seconds: float = 0.0
    hardware_time_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    @property
    def success_rate(self) -> float:
        """Fraction of samples that decoded to an equilibrium (Table 1 metric)."""
        if not self.runs:
            return 0.0
        return sum(run.success for run in self.runs) / len(self.runs)

    def classification_fractions(self) -> dict:
        """Fractions per outcome class (Fig. 8 metric)."""
        fractions = {"pure": 0.0, "mixed": 0.0, "error": 0.0}
        if not self.runs:
            return fractions
        for run in self.runs:
            fractions[run.classification] += 1.0
        return {key: value / len(self.runs) for key, value in fractions.items()}

    @property
    def successful_profiles(self) -> List[StrategyProfile]:
        """Profiles of the successful samples."""
        return [run.profile for run in self.runs if run.success and run.profile is not None]


class DWaveLikeSolver:
    """A classical stand-in for a D-Wave machine solving the S-QUBO form.

    Parameters
    ----------
    game:
        The game to solve.
    machine:
        The machine profile whose precision/connectivity/timing to model.
    weights:
        S-QUBO penalty weights.
    num_sweeps:
        Sweeps of the classical annealer per sample (the knob standing in
        for the machine's anneal schedule).
    epsilon:
        Equilibrium tolerance for classifying decoded samples; defaults
        to exact (pure equilibria decode exactly).
    seed:
        Seed controlling the hardware-degradation noise sample.
    """

    def __init__(
        self,
        game: BimatrixGame,
        machine: AnnealerProfile = DWAVE_ADVANTAGE_4_1,
        weights: Optional[SQuboWeights] = None,
        num_sweeps: int = 200,
        epsilon: float = 1e-6,
        seed: SeedLike = None,
    ) -> None:
        if num_sweeps < 1:
            raise ValueError(f"num_sweeps must be >= 1, got {num_sweeps}")
        self.game = game
        self.machine = machine
        self.num_sweeps = num_sweeps
        self.epsilon = epsilon
        self.formulation: SQuboFormulation = build_s_qubo(game, weights=weights)
        rng = as_generator(seed)
        self.effective_model = self._degrade_model(self.formulation.model, rng)

    # ------------------------------------------------------------------
    # Hardware degradation
    # ------------------------------------------------------------------
    def _degrade_model(self, model: QuboModel, rng: np.random.Generator) -> QuboModel:
        """Apply precision quantisation and embedding noise to the QUBO.

        Analog control error scales with the embedding chain length a
        dense problem needs on the machine's sparse topology.
        """
        matrix = model.q_matrix.copy()
        scale = float(np.abs(matrix).max())
        if scale == 0:
            return model
        # Coupling precision: quantise to the machine's effective bit depth.
        levels = 2**self.machine.coupling_precision_bits - 1
        step = scale / levels
        quantised = np.round(matrix / step) * step
        # Integrated control error grows with chain length.
        chain_length = self.machine.embedding_overhead(model.num_variables)
        noise_sigma = 0.01 * scale * np.sqrt(chain_length)
        noise = rng.normal(0.0, noise_sigma, size=matrix.shape)
        noise = (noise + noise.T) / 2.0
        return QuboModel(quantised + noise, offset=model.offset, variable_names=model.variable_names)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, seed: SeedLike = None) -> BaselineRunResult:
        """Draw one sample (one anneal-and-read cycle) and classify it."""
        result = anneal_qubo(
            self.effective_model,
            config=BinaryAnnealerConfig(num_sweeps=self.num_sweeps),
            seed=seed,
        )
        return self._classify_sample(result)

    def _classify_sample(self, result: BinaryAnnealResult) -> BaselineRunResult:
        """Decode one anneal result and classify it against the game."""
        decoded = self.formulation.decode(result.best_assignment)
        if not decoded.feasible or decoded.profile is None:
            return BaselineRunResult(
                profile=None,
                feasible=False,
                is_equilibrium=False,
                classification="error",
                energy=result.best_energy,
            )
        classification = classify_profile(
            self.game, decoded.profile, epsilon=self.epsilon, purity_atol=1e-6
        )
        return BaselineRunResult(
            profile=decoded.profile,
            feasible=True,
            is_equilibrium=classification != "error",
            classification=classification,
            energy=result.best_energy,
        )

    def sample_batch(
        self,
        num_samples: int,
        seed: SeedLike = None,
        progress=None,
        execution: str = "vectorized",
    ) -> BaselineBatchResult:
        """Draw ``num_samples`` independent samples (a D-Wave submission).

        All reads anneal in lockstep on the chain-parallel engine
        (:func:`~repro.qubo.annealer.anneal_qubo_batch`) by default, so
        baseline sweeps scale the same way as the C-Nash solver; pass
        ``execution="sequential"`` for the one-read-at-a-time reference.
        ``progress(completed, total)`` follows the same convention as
        :meth:`CNashSolver.solve_batch`: completed samples on the
        sequential path, the annealed fraction of the sweep budget
        scaled to sample counts on the vectorized one.
        """
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        start = time.perf_counter()
        if execution == "sequential":
            # Reference path: per-sample spawned generators, bit-compatible
            # with the pre-vectorization seeding of this method.
            results: List[BinaryAnnealResult] = []
            for index, rng in enumerate(spawn_generators(seed, num_samples)):
                results.append(
                    anneal_qubo(
                        self.effective_model,
                        config=BinaryAnnealerConfig(num_sweeps=self.num_sweeps),
                        seed=rng,
                    )
                )
                if progress is not None:
                    progress(index + 1, num_samples)
        else:
            results = anneal_qubo_batch(
                self.effective_model,
                num_samples,
                config=BinaryAnnealerConfig(num_sweeps=self.num_sweeps),
                seed=seed,
                execution=execution,
                progress=progress,
            )
        runs = [self._classify_sample(result) for result in results]
        elapsed = time.perf_counter() - start
        return BaselineBatchResult(
            game_name=self.game.name,
            solver_name=self.machine.name,
            runs=runs,
            wall_clock_seconds=elapsed,
            hardware_time_seconds=self.machine.batch_time_s(num_samples),
        )

    # ------------------------------------------------------------------
    # Post-processing
    # ------------------------------------------------------------------
    def distinct_solutions(self, batch: BaselineBatchResult, atol: float = 1e-3) -> EquilibriumSet:
        """De-duplicated equilibria found across a batch of samples."""
        found = EquilibriumSet(game=self.game, atol=atol)
        for profile in batch.successful_profiles:
            found.add(profile)
        return found

    def time_to_solution_s(self, batch: BaselineBatchResult) -> Optional[float]:
        """Expected machine time until the first successful sample.

        The expected number of samples until a success is
        ``1 / success_rate``; each costs one anneal-and-read cycle, plus
        one programming cycle per submission.
        """
        if batch.success_rate == 0:
            return None
        expected_samples = 1.0 / batch.success_rate
        return (
            self.machine.programming_time_ms * 1e-3
            + expected_samples * self.machine.sample_time_s
        )
