"""Baseline Nash solvers and reference data.

The paper compares C-Nash against two D-Wave quantum annealers running
the S-QUBO formulation.  This package provides a classical stand-in for
those machines (same formulation, machine-profile-based degradation and
timing), an exhaustive grid-search baseline, and the literature-reported
numbers from the paper's tables/figures for side-by-side reporting.
"""

from repro.baselines.dwave_like import (
    BaselineBatchResult,
    BaselineRunResult,
    DWaveLikeSolver,
)
from repro.baselines.embedding import (
    Embedding,
    EmbeddingError,
    chimera_graph,
    embed_dense_problem,
    greedy_embed,
    hardware_graph_for,
    pegasus_like_graph,
)
from repro.baselines.exhaustive import ExhaustiveSearchResult, exhaustive_grid_search
from repro.baselines.literature import (
    FIG8_SOLUTION_DISTRIBUTIONS,
    FIG9_SOLUTIONS_FOUND,
    FIG9_TARGET_SOLUTIONS,
    FIG10_SPEEDUP_OVER_CNASH,
    PAPER_GAME_NAMES,
    PAPER_SA_ITERATIONS,
    PAPER_SA_RUNS,
    TABLE1_SUCCESS_RATE_PERCENT,
    SolutionDistribution,
    canonical_game_name,
)
from repro.baselines.machines import (
    DWAVE_2000Q6,
    DWAVE_ADVANTAGE_4_1,
    AnnealerProfile,
    available_machines,
    get_machine,
)

__all__ = [
    "DWaveLikeSolver",
    "BaselineRunResult",
    "BaselineBatchResult",
    "exhaustive_grid_search",
    "Embedding",
    "EmbeddingError",
    "chimera_graph",
    "pegasus_like_graph",
    "hardware_graph_for",
    "greedy_embed",
    "embed_dense_problem",
    "ExhaustiveSearchResult",
    "AnnealerProfile",
    "DWAVE_2000Q6",
    "DWAVE_ADVANTAGE_4_1",
    "available_machines",
    "get_machine",
    "SolutionDistribution",
    "TABLE1_SUCCESS_RATE_PERCENT",
    "FIG8_SOLUTION_DISTRIBUTIONS",
    "FIG9_TARGET_SOLUTIONS",
    "FIG9_SOLUTIONS_FOUND",
    "FIG10_SPEEDUP_OVER_CNASH",
    "PAPER_GAME_NAMES",
    "PAPER_SA_RUNS",
    "PAPER_SA_ITERATIONS",
    "canonical_game_name",
]
