"""Exhaustive quantised-strategy search baseline.

A brute-force software baseline that scans the whole quantised strategy
grid for (approximate) equilibria.  It is exponential in the number of
actions, so it only runs for the smaller benchmark games, where it serves
two purposes: an independent check that the SA solver's grid optimum is
the true grid optimum, and a reference for the ablation benchmarks
(SA vs exhaustive scaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement
from typing import Iterator, List

import numpy as np

from repro.core.max_qubo import IdealEvaluator
from repro.core.strategy import QuantizedStrategyPair
from repro.games.bimatrix import BimatrixGame
from repro.games.equilibrium import EquilibriumSet, StrategyProfile, classify_profile


def _compositions(total: int, parts: int) -> Iterator[np.ndarray]:
    """All length-``parts`` non-negative integer vectors summing to ``total``."""
    for dividers in combinations_with_replacement(range(parts), total):
        counts = np.zeros(parts, dtype=int)
        for index in dividers:
            counts[index] += 1
        yield counts


@dataclass
class ExhaustiveSearchResult:
    """Every (approximate) equilibrium on the quantised strategy grid."""

    game: BimatrixGame
    num_intervals: int
    epsilon: float
    equilibria: EquilibriumSet
    num_states_scanned: int
    best_objective: float

    @property
    def num_equilibria(self) -> int:
        """Number of distinct grid equilibria found."""
        return len(self.equilibria)


def exhaustive_grid_search(
    game: BimatrixGame,
    num_intervals: int,
    epsilon: float,
    dedup_atol: float = 1e-6,
    max_states: int = 2_000_000,
) -> ExhaustiveSearchResult:
    """Scan every quantised strategy pair and collect the epsilon-equilibria.

    Parameters
    ----------
    epsilon:
        Equilibrium tolerance (typically matched to the quantisation step
        as in :meth:`repro.core.config.CNashConfig.effective_epsilon`).
    max_states:
        Guard against accidentally launching an infeasible scan.
    """
    n, m = game.shape
    evaluator = IdealEvaluator(game)
    p_grid: List[np.ndarray] = list(_compositions(num_intervals, n))
    q_grid: List[np.ndarray] = list(_compositions(num_intervals, m))
    total = len(p_grid) * len(q_grid)
    if total > max_states:
        raise ValueError(
            f"grid has {total} states which exceeds max_states={max_states}; "
            "reduce num_intervals or use the SA solver"
        )
    equilibria = EquilibriumSet(game=game, atol=dedup_atol)
    best_objective = np.inf
    for p_counts in p_grid:
        for q_counts in q_grid:
            state = QuantizedStrategyPair(p_counts, q_counts, num_intervals)
            objective = evaluator.evaluate(state)
            best_objective = min(best_objective, objective)
            profile = state.to_profile()
            if classify_profile(game, profile, epsilon=epsilon, purity_atol=1e-9) != "error":
                equilibria.add(profile)
    return ExhaustiveSearchResult(
        game=game,
        num_intervals=num_intervals,
        epsilon=epsilon,
        equilibria=equilibria,
        num_states_scanned=total,
        best_objective=float(best_objective),
    )
