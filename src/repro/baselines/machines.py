"""Timing and capability profiles of the baseline quantum annealers.

The paper compares C-Nash against the D-Wave 2000 Q6 and D-Wave
Advantage 4.1 machines.  We obviously cannot run those machines, so the
baseline solver (:mod:`repro.baselines.dwave_like`) is a classical
simulated annealer over the same S-QUBO formulation, and this module
records the per-sample timing and connectivity figures of the real
machines (from D-Wave's public documentation) so that the Fig. 10
time-to-solution comparison can be carried out with realistic per-sample
costs on the baseline side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class AnnealerProfile:
    """Capability/timing profile of one quantum annealer.

    Parameters
    ----------
    name:
        Human-readable machine name.
    num_qubits:
        Number of physical qubits.
    connectivity_degree:
        Typical per-qubit coupler count (Chimera: 6, Pegasus: 15).  Lower
        connectivity forces longer embedding chains, which degrade the
        effective coupling precision; the baseline solver converts this
        into extra coefficient noise.
    anneal_time_us / readout_time_us / programming_time_ms:
        Per-sample anneal and readout times and the per-problem
        programming overhead.
    coupling_precision_bits:
        Effective precision of the programmable couplings; the S-QUBO
        coefficients are quantised to this precision before solving,
        modelling the analog control error (ICE) of the hardware.
    """

    name: str
    num_qubits: int
    connectivity_degree: int
    anneal_time_us: float = 20.0
    readout_time_us: float = 120.0
    programming_time_ms: float = 10.0
    coupling_precision_bits: int = 5

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError(f"num_qubits must be >= 1, got {self.num_qubits}")
        if self.connectivity_degree < 1:
            raise ValueError(
                f"connectivity_degree must be >= 1, got {self.connectivity_degree}"
            )
        for label, value in (
            ("anneal_time_us", self.anneal_time_us),
            ("readout_time_us", self.readout_time_us),
            ("programming_time_ms", self.programming_time_ms),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")
        if self.coupling_precision_bits < 1:
            raise ValueError(
                f"coupling_precision_bits must be >= 1, got {self.coupling_precision_bits}"
            )

    @property
    def sample_time_s(self) -> float:
        """Wall-clock time of one anneal-and-read sample."""
        return (self.anneal_time_us + self.readout_time_us) * 1e-6

    def batch_time_s(self, num_samples: int) -> float:
        """Time for one programming cycle plus ``num_samples`` samples."""
        if num_samples < 0:
            raise ValueError(f"num_samples must be non-negative, got {num_samples}")
        return self.programming_time_ms * 1e-3 + num_samples * self.sample_time_s

    def embedding_overhead(self, num_logical_variables: int) -> float:
        """Average chain length needed to embed a dense problem.

        Dense QUBOs on sparse hardware need chains of roughly
        ``num_variables / connectivity`` physical qubits per logical
        variable; the baseline uses this to scale its coefficient noise.
        """
        if num_logical_variables < 1:
            raise ValueError(
                f"num_logical_variables must be >= 1, got {num_logical_variables}"
            )
        return max(1.0, num_logical_variables / self.connectivity_degree)


#: D-Wave 2000Q (Chimera topology) profile.
DWAVE_2000Q6 = AnnealerProfile(
    name="D-Wave 2000 Q6",
    num_qubits=2048,
    connectivity_degree=6,
    anneal_time_us=20.0,
    readout_time_us=200.0,
    programming_time_ms=12.0,
    coupling_precision_bits=4,
)

#: D-Wave Advantage 4.1 (Pegasus topology) profile.
DWAVE_ADVANTAGE_4_1 = AnnealerProfile(
    name="D-Wave Advantage 4.1",
    num_qubits=5627,
    connectivity_degree=15,
    anneal_time_us=20.0,
    readout_time_us=120.0,
    programming_time_ms=10.0,
    coupling_precision_bits=5,
)


def available_machines() -> List[AnnealerProfile]:
    """The machine profiles used in the paper's comparison."""
    return [DWAVE_2000Q6, DWAVE_ADVANTAGE_4_1]


def get_machine(name: str) -> AnnealerProfile:
    """Look up a machine profile by (case-insensitive, fuzzy) name."""
    key = name.strip().lower().replace(" ", "").replace("-", "").replace("_", "").replace(".", "")
    table: Dict[str, AnnealerProfile] = {
        "dwave2000q6": DWAVE_2000Q6,
        "2000q6": DWAVE_2000Q6,
        "dwaveadvantage41": DWAVE_ADVANTAGE_4_1,
        "advantage41": DWAVE_ADVANTAGE_4_1,
    }
    if key not in table:
        raise KeyError(
            f"unknown machine {name!r}; available: "
            + ", ".join(profile.name for profile in available_machines())
        )
    return table[key]
