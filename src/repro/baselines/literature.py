"""Literature-reported reference numbers used in the paper's tables/figures.

The paper extracts the D-Wave success rates, solution distributions and
time-to-solution numbers from its reference [8] ("extracted from
literature" in Table 1) rather than re-running the machines.  This module
records those published values so every experiment can print the
paper-reported column next to the values measured with our simulated
baselines, and EXPERIMENTS.md can be generated mechanically.

Values marked ``None`` were reported as "not mentioned" in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


#: Canonical experiment game names, in the order the paper lists them.
PAPER_GAME_NAMES = (
    "Battle of the Sexes",
    "Bird Game",
    "Modified Prisoner's Dilemma",
)


@dataclass(frozen=True)
class SolutionDistribution:
    """Fractions of SA runs / samples per outcome class (Fig. 8)."""

    error: float
    pure: float
    mixed: float

    def __post_init__(self) -> None:
        for label, value in (("error", self.error), ("pure", self.pure), ("mixed", self.mixed)):
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{label} fraction must be in [0, 1], got {value}")

    @property
    def success(self) -> float:
        """Fraction of runs that found some equilibrium."""
        return self.pure + self.mixed


#: Table 1 — success rates (%) of finding an NE solution.
TABLE1_SUCCESS_RATE_PERCENT: Dict[str, Dict[str, Optional[float]]] = {
    "D-Wave 2000 Q6": {
        "Battle of the Sexes": 99.62,
        "Bird Game": 88.16,
        "Modified Prisoner's Dilemma": None,
    },
    "D-Wave Advantage 4.1": {
        "Battle of the Sexes": 98.04,
        "Bird Game": 72.36,
        "Modified Prisoner's Dilemma": 13.30,
    },
    "C-Nash": {
        "Battle of the Sexes": 100.0,
        "Bird Game": 88.94,
        "Modified Prisoner's Dilemma": 81.90,
    },
}

#: Fig. 8 — solution distributions per solver per game.
FIG8_SOLUTION_DISTRIBUTIONS: Dict[str, Dict[str, Optional[SolutionDistribution]]] = {
    "D-Wave 2000 Q6": {
        "Battle of the Sexes": SolutionDistribution(error=0.0038, pure=0.9962, mixed=0.0),
        "Bird Game": SolutionDistribution(error=0.1184, pure=0.8816, mixed=0.0),
        "Modified Prisoner's Dilemma": None,
    },
    "D-Wave Advantage 4.1": {
        "Battle of the Sexes": SolutionDistribution(error=0.0196, pure=0.9804, mixed=0.0),
        "Bird Game": SolutionDistribution(error=0.2764, pure=0.7236, mixed=0.0),
        "Modified Prisoner's Dilemma": SolutionDistribution(error=0.8670, pure=0.1330, mixed=0.0),
    },
    "C-Nash": {
        "Battle of the Sexes": SolutionDistribution(error=0.0, pure=0.6018, mixed=0.3982),
        "Bird Game": SolutionDistribution(error=0.1106, pure=0.6018, mixed=0.2876),
        "Modified Prisoner's Dilemma": SolutionDistribution(error=0.1810, pure=0.4030, mixed=0.4160),
    },
}

#: Fig. 9 — number of distinct target solutions and how many each solver found.
FIG9_TARGET_SOLUTIONS: Dict[str, int] = {
    "Battle of the Sexes": 3,
    "Bird Game": 6,
    "Modified Prisoner's Dilemma": 25,
}

FIG9_SOLUTIONS_FOUND: Dict[str, Dict[str, Optional[int]]] = {
    "D-Wave 2000 Q6": {
        "Battle of the Sexes": 2,
        "Bird Game": 2,
        "Modified Prisoner's Dilemma": None,
    },
    "D-Wave Advantage 4.1": {
        "Battle of the Sexes": 2,
        "Bird Game": 2,
        "Modified Prisoner's Dilemma": 3,
    },
    "C-Nash": {
        "Battle of the Sexes": 3,
        "Bird Game": 6,
        "Modified Prisoner's Dilemma": 25,
    },
}

#: Fig. 10 — time-to-solution speedups of C-Nash over each baseline.
FIG10_SPEEDUP_OVER_CNASH: Dict[str, Dict[str, Optional[float]]] = {
    "D-Wave 2000 Q6": {
        "Battle of the Sexes": 157.9,
        "Bird Game": 105.3,
        "Modified Prisoner's Dilemma": None,
    },
    "D-Wave Advantage 4.1": {
        "Battle of the Sexes": 79.0,
        "Bird Game": 52.6,
        "Modified Prisoner's Dilemma": 18.4,
    },
}

#: Paper SA protocol: runs per game and iterations per run (Sec. 4.2).
PAPER_SA_RUNS = 5000
PAPER_SA_ITERATIONS: Dict[str, int] = {
    "Battle of the Sexes": 10_000,
    "Bird Game": 15_000,
    "Modified Prisoner's Dilemma": 50_000,
}


def canonical_game_name(game_name: str) -> str:
    """Map a library game name onto the paper's canonical experiment name.

    The library's Modified Prisoner's Dilemma includes the action count in
    its name; the paper tables do not.
    """
    for name in PAPER_GAME_NAMES:
        if game_name.startswith(name):
            return name
    raise KeyError(f"{game_name!r} is not one of the paper's benchmark games")
