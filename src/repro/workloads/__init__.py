"""Declarative workload descriptions: game specs and ensemble sweeps.

This package is the *input* side of the solver stack, mirroring what
:mod:`repro.backends` did for the solver side:

* :class:`~repro.games.spec.GameSpec` (re-exported here) — a frozen,
  JSON-serialisable, fingerprintable description of one game;
* :class:`~repro.workloads.ensembles.EnsembleSpec` — a generator x
  parameter grid x seed range that lazily yields game specs;
* :func:`repro.api.sweep` — streams an ensemble through the service
  scheduler with bounded in-flight materialisation and spec-keyed
  caching.

``python -m repro.workloads --smoke`` runs a small ensemble through the
in-process scheduler twice and asserts the second pass is served from
the spec-keyed cache (the CI ensemble smoke job).
"""

from repro.games.spec import (
    GameLike,
    GameSpec,
    GameTransform,
    MaterializedGame,
    as_game_spec,
    iter_specs,
)
from repro.workloads.ensembles import EnsembleSpec, ensemble_or_specs

__all__ = [
    "GameLike",
    "GameSpec",
    "GameTransform",
    "MaterializedGame",
    "as_game_spec",
    "iter_specs",
    "EnsembleSpec",
    "ensemble_or_specs",
]
