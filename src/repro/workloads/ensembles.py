"""Ensemble sweeps: generator x parameter grid x seed range, lazily.

The evaluation methodology of the neurodynamic Nash-equilibrium line of
work (PAPERS.md) measures solvers over *families* of generated games —
thousands of instances per configuration — rather than a handful of
hand-picked benchmarks.  An :class:`EnsembleSpec` describes such a
family declaratively: one generator kind, a grid of parameter values and
a seed range.  ``specs()`` lazily yields one
:class:`~repro.games.spec.GameSpec` per (grid point, seed) combination,
so a 10,000-game ensemble costs a few hundred bytes until the scheduler
actually materialises each game inside a worker.

``repro.api.sweep`` streams an ensemble (or any iterable of game-likes)
through the service scheduler with bounded in-flight materialisation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.games.generators import get_generator
from repro.games.spec import GameSpec, GameTransform, _jsonable, validate_factory_params

#: Seed-range argument forms accepted by :class:`EnsembleSpec`: an int
#: ``n`` (meaning ``range(n)``), a ``range``, or an explicit sequence.
SeedsLike = Union[int, range, Sequence[int]]


def _normalise_seeds(seeds: SeedsLike) -> Tuple[int, ...]:
    if isinstance(seeds, bool):
        raise ValueError(f"seeds must be an int count, range or sequence, got {seeds!r}")
    if isinstance(seeds, int):
        if seeds < 1:
            raise ValueError(f"seed count must be >= 1, got {seeds}")
        return tuple(range(seeds))
    values = tuple(int(seed) for seed in seeds)
    if not values:
        raise ValueError("seeds must be non-empty")
    return values


@dataclass(frozen=True)
class EnsembleSpec:
    """A declarative family of generated games.

    Parameters
    ----------
    generator:
        Generator kind (see :func:`repro.games.generators.available_generators`).
    grid:
        Parameter grid: each key maps to the list of values to sweep.
        The cartesian product of all value lists is enumerated in sorted
        key order (deterministic regardless of insertion order).
    seeds:
        Seed range: an int ``n`` (``range(n)``), a ``range``, or an
        explicit sequence of ints.  Every grid point is instantiated
        once per seed.
    base_params:
        Fixed generator parameters shared by every grid point.
    transforms:
        Transform chain appended to every generated spec (e.g.
        ``(GameTransform("shifted", {}),)``).
    name:
        Optional human-readable ensemble label.

    Examples
    --------
    >>> ensemble = EnsembleSpec(
    ...     generator="random",
    ...     grid={"num_row_actions": [2, 4, 8]},
    ...     seeds=range(100),
    ... )
    >>> len(ensemble)
    300
    """

    generator: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict, hash=False)
    seeds: SeedsLike = 1
    base_params: Mapping[str, Any] = field(default_factory=dict, hash=False)
    transforms: Tuple[GameTransform, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        get_generator(self.generator)  # raises KeyError listing candidates
        grid = {
            str(key): [_jsonable(value, f"grid value for {key!r}") for value in values]
            for key, values in dict(self.grid).items()
        }
        for key, values in grid.items():
            if not values:
                raise ValueError(f"grid axis {key!r} has no values")
        base = {
            str(key): _jsonable(value, f"base param {key!r}")
            for key, value in dict(self.base_params).items()
        }
        overlap = sorted(set(grid) & set(base))
        if overlap:
            raise ValueError(f"parameters {overlap} appear in both grid and base_params")
        # Fail at ensemble construction — not on game N of a dispatched
        # sweep — when the grid/base parameters do not fit the generator.
        probe = {key: values[0] for key, values in grid.items()}
        probe.update(base)
        validate_factory_params(
            get_generator(self.generator), probe, f"generator {self.generator!r}"
        )
        object.__setattr__(self, "grid", MappingProxyType(grid))
        object.__setattr__(self, "base_params", MappingProxyType(base))
        object.__setattr__(self, "seeds", _normalise_seeds(self.seeds))
        object.__setattr__(
            self,
            "transforms",
            tuple(
                step if isinstance(step, GameTransform) else GameTransform.from_wire(step)
                for step in self.transforms
            ),
        )

    def __reduce__(self):
        return (
            type(self),
            (
                self.generator,
                dict(self.grid),
                self.seeds,
                dict(self.base_params),
                self.transforms,
                self.name,
            ),
        )

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def grid_points(self) -> Iterator[Dict[str, Any]]:
        """Lazily yield one merged parameter dict per grid point."""
        keys = sorted(self.grid)
        for combination in itertools.product(*(self.grid[key] for key in keys)):
            params = dict(self.base_params)
            params.update(zip(keys, combination))
            yield params

    def specs(self) -> Iterator[GameSpec]:
        """Lazily yield one :class:`GameSpec` per (grid point, seed)."""
        for params in self.grid_points():
            for seed in self.seeds:
                yield GameSpec(
                    kind="generator",
                    name=self.generator,
                    params=params,
                    seed=seed,
                    transforms=self.transforms,
                )

    def __iter__(self) -> Iterator[GameSpec]:
        return self.specs()

    def __len__(self) -> int:
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count * len(self.seeds)

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON wire form (inverse of :meth:`from_dict`)."""
        payload: Dict[str, Any] = {
            "generator": self.generator,
            "grid": {key: list(values) for key, values in self.grid.items()},
            "seeds": list(self.seeds),
        }
        if self.base_params:
            payload["base_params"] = dict(self.base_params)
        if self.transforms:
            payload["transforms"] = [step.to_wire() for step in self.transforms]
        if self.name:
            payload["name"] = self.name
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EnsembleSpec":
        """Reconstruct an ensemble from :meth:`to_dict` output."""
        return cls(
            generator=str(data["generator"]),
            grid=dict(data.get("grid", {})),
            seeds=list(data.get("seeds", [0])),
            base_params=dict(data.get("base_params", {})),
            transforms=tuple(
                GameTransform.from_wire(step) for step in data.get("transforms", [])
            ),
            name=str(data.get("name", "")),
        )

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        axes = ", ".join(f"{key}x{len(values)}" for key, values in sorted(self.grid.items()))
        label = f"{self.name}: " if self.name else ""
        return (
            f"{label}{len(self)} games = {self.generator}"
            f"[{axes or 'no grid'}] x {len(self.seeds)} seeds"
        )


def ensemble_or_specs(workload: Any) -> Iterator[GameSpec]:
    """Lazily yield specs from an :class:`EnsembleSpec` or any iterable of game-likes."""
    from repro.games.spec import iter_specs

    if isinstance(workload, EnsembleSpec):
        return workload.specs()
    return iter_specs(workload)


def spec_chunks(workload: Any, chunk_size: int) -> Iterator[Tuple[GameSpec, ...]]:
    """Yield specs from a workload in tuples of at most ``chunk_size``.

    ``repro.api.sweep`` submits one chunk per service round-trip
    (:meth:`~repro.service.client.InProcessClient.submit_many`), which
    fills the scheduler's queue fast enough for batch coalescing to see
    whole companion groups even with a zero linger budget.  Laziness is
    preserved: only one chunk of specs is held at a time, so in-flight
    materialisation stays bounded by the sweep window.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    iterator = ensemble_or_specs(workload)
    while True:
        chunk = tuple(itertools.islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk
