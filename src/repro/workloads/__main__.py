"""Ensemble smoke run: ``python -m repro.workloads --smoke``.

Streams a small generator grid through :func:`repro.api.sweep` on the
in-process scheduler twice and asserts the second pass is served (>= 95%)
from the spec-keyed result cache.  This is the CI guard for the whole
workload-IR path: spec wire forms through the scheduler, lazy
materialisation on workers, and spec-keyed cache keys.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def run_smoke(num_seeds: int = 3, verbose: bool = True) -> int:
    """Two identical ensemble sweeps; the repeat must be cache-served."""
    import repro.api as api
    from repro.core.config import CNashConfig
    from repro.service.client import InProcessClient
    from repro.telemetry import validate_phases
    from repro.workloads import EnsembleSpec

    ensemble = EnsembleSpec(
        generator="random",
        grid={"num_row_actions": [2, 3], "payoff_range": [[0.0, 4.0], [0.0, 8.0]]},
        seeds=num_seeds,
        base_params={"integer_payoffs": True},
        name="ci smoke grid",
    )
    spec = api.SolveSpec(
        num_runs=4,
        seed=11,
        options={"config": CNashConfig(num_intervals=4, num_iterations=120)},
    )
    if verbose:
        print(f"ensemble: {ensemble.describe()}")
    with InProcessClient(executor="thread", max_workers=2, shard_size=4) as client:
        first = api.sweep(ensemble, backends="cnash", spec=spec, client=client,
                          max_in_flight=4)
        second = api.sweep(ensemble, backends="cnash", spec=spec, client=client,
                           max_in_flight=4)
    if verbose:
        print(f"pass 1: {first.summary()}")
        print(f"pass 2: {second.summary()}")
    # Every traced first-pass job must carry a well-formed timeline:
    # monotone, non-overlapping phases at every depth (cache-served
    # repeats legitimately carry none).
    traces = [
        report.metadata["trace"]
        for report in first.reports
        if "trace" in report.metadata
    ]
    for trace in traces:
        validate_phases(trace)
    ok = (
        first.num_jobs == len(ensemble)
        and second.num_jobs == first.num_jobs
        and (first.cache_hits or 0) == 0
        and second.cache_hits is not None
        and second.cache_hit_rate is not None
        and second.cache_hit_rate >= 0.95
        and len(traces) == first.num_jobs
    )
    if verbose:
        print(f"smoke: jobs={second.num_jobs} repeat_cache_hits={second.cache_hits} "
              f"traced={len(traces)} phase_seconds="
              f"{ {k: round(v, 4) for k, v in first.phase_seconds.items()} } "
              f"-> {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for ``python -m repro.workloads``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Ensemble-sweep utilities for the GameSpec workload IR.",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run a small ensemble sweep twice and assert the repeat is "
        "served from the spec-keyed cache (CI)",
    )
    parser.add_argument(
        "--seeds", type=int, default=3,
        help="seeds per grid point for the smoke ensemble",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(num_seeds=args.seeds)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
