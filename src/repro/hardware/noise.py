"""Variability and noise models for the FeFET CiM arrays.

The paper's robustness study (Sec. 4.1 / Fig. 7(a)) assumes a
device-to-device FeFET threshold-voltage variability of sigma = 40 mV
(from its reference [29]) and an 8 % series-resistor variability (from
reference [30]).  :class:`VariabilityModel` bundles these parameters,
samples per-cell multiplicative current deviations and read-to-read
noise, and is shared by the device, cell and crossbar models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class VariabilityModel:
    """Static (device-to-device) and dynamic (read-to-read) variability.

    Parameters
    ----------
    fefet_vth_sigma_mv:
        Standard deviation of the FeFET threshold voltage in millivolts
        (paper default: 40 mV).
    resistor_sigma_fraction:
        Relative standard deviation of the integrated series resistor
        (paper default: 8 %).
    vth_to_current_sensitivity:
        Fractional ON-current change per millivolt of threshold shift.
        The 1FeFET1R structure suppresses the ON-current sensitivity to
        V_TH (Fig. 2(d)); the default models the residual sensitivity.
    read_noise_fraction:
        Relative standard deviation of the cycle-to-cycle read noise
        added on every evaluation (thermal/shot noise at the sense node).
    """

    fefet_vth_sigma_mv: float = 40.0
    resistor_sigma_fraction: float = 0.08
    vth_to_current_sensitivity: float = 0.0005
    read_noise_fraction: float = 0.002

    def __post_init__(self) -> None:
        for label, value in (
            ("fefet_vth_sigma_mv", self.fefet_vth_sigma_mv),
            ("resistor_sigma_fraction", self.resistor_sigma_fraction),
            ("vth_to_current_sensitivity", self.vth_to_current_sensitivity),
            ("read_noise_fraction", self.read_noise_fraction),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")

    @property
    def cell_current_sigma_fraction(self) -> float:
        """Combined per-cell relative ON-current spread.

        The V_TH-induced spread and the resistor spread are independent,
        so their variances add.  Because the 1FeFET1R cell's ON current is
        dominated by the series resistor, the resistor term dominates.
        """
        vth_term = self.fefet_vth_sigma_mv * self.vth_to_current_sensitivity
        return float(np.sqrt(vth_term**2 + self.resistor_sigma_fraction**2))

    def sample_cell_factors(self, shape, seed: SeedLike = None) -> np.ndarray:
        """Sample per-cell static ON-current multipliers of the given shape.

        Multipliers are lognormal-distributed around 1 so currents stay
        positive even in the tails.
        """
        rng = as_generator(seed)
        sigma = self.cell_current_sigma_fraction
        if sigma == 0:
            return np.ones(shape)
        # Lognormal with mean 1: mu = -sigma_ln^2 / 2.
        sigma_ln = np.sqrt(np.log(1.0 + sigma**2))
        mu_ln = -0.5 * sigma_ln**2
        return rng.lognormal(mean=mu_ln, sigma=sigma_ln, size=shape)

    def sample_vth_shifts_mv(self, shape, seed: SeedLike = None) -> np.ndarray:
        """Sample per-device threshold-voltage shifts in millivolts."""
        rng = as_generator(seed)
        return rng.normal(0.0, self.fefet_vth_sigma_mv, size=shape)

    def sample_read_noise(self, shape, seed: SeedLike = None) -> np.ndarray:
        """Sample multiplicative read-to-read noise factors."""
        rng = as_generator(seed)
        if self.read_noise_fraction == 0:
            return np.ones(shape)
        return 1.0 + rng.normal(0.0, self.read_noise_fraction, size=shape)


#: Variability parameters used throughout the paper's evaluation.
PAPER_VARIABILITY = VariabilityModel()

#: An idealised (noise-free) variability model for functional tests.
IDEAL_VARIABILITY = VariabilityModel(
    fefet_vth_sigma_mv=0.0,
    resistor_sigma_fraction=0.0,
    vth_to_current_sensitivity=0.0,
    read_noise_fraction=0.0,
)
