"""Mapping of payoff matrices and strategies onto the crossbar.

Sec. 3.2 / Fig. 4 of the paper define the mapping:

* each payoff matrix element is represented by ``t`` 1FeFET1R cells in a
  thermometer (unary) code, with ``t`` set by the largest element;
* each probability is quantised to ``I`` intervals, so a probability
  ``k / I`` activates ``k`` of the ``I`` word lines (rows) of its action
  block, and ``k`` of the ``I`` column replicas of the opposing action;
* the physical crossbar implementing ``p^T M q`` therefore has
  ``I x n`` rows and ``I x t x m`` columns, and the number of conducting
  cells equals ``(p_i I) * (q_j I) * level(M_ij)`` summed over blocks.

:class:`StrategyQuantizer` handles the probability quantisation,
:class:`PayoffMapping` handles the payoff-level encoding and produces the
physical bit pattern plus activation masks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import ensure_int_at_least, ensure_matrix, ensure_probability_vector


@dataclass(frozen=True)
class StrategyQuantizer:
    """Quantise probabilities into ``1/I`` intervals.

    Probabilities live on the grid ``{0, 1/I, 2/I, ..., 1}``; a full mixed
    strategy is a vector of grid values summing to 1, i.e. an integer
    composition of ``I``.
    """

    num_intervals: int = 8

    def __post_init__(self) -> None:
        ensure_int_at_least(self.num_intervals, 1, "num_intervals")

    @property
    def step(self) -> float:
        """The probability resolution ``1/I``."""
        return 1.0 / self.num_intervals

    def to_counts(self, strategy: np.ndarray) -> np.ndarray:
        """Convert a probability vector to integer interval counts summing to I.

        Rounds to the nearest grid point while preserving the total count
        (largest-remainder correction), so the result is always a valid
        quantised strategy.
        """
        probabilities = ensure_probability_vector(strategy, "strategy")
        scaled = probabilities * self.num_intervals
        counts = np.floor(scaled).astype(int)
        remainder = self.num_intervals - int(counts.sum())
        if remainder > 0:
            fractional = scaled - counts
            order = np.argsort(-fractional)
            for index in order[:remainder]:
                counts[index] += 1
        elif remainder < 0:
            order = np.argsort(scaled - counts)
            for index in order[: -remainder]:
                counts[index] -= 1
        return counts

    def to_probabilities(self, counts: np.ndarray) -> np.ndarray:
        """Convert integer interval counts back to a probability vector."""
        values = np.asarray(counts, dtype=int)
        if np.any(values < 0):
            raise ValueError(f"counts must be non-negative, got {values}")
        if values.sum() != self.num_intervals:
            raise ValueError(
                f"counts must sum to {self.num_intervals}, got {int(values.sum())}"
            )
        return values.astype(float) / self.num_intervals

    def quantize(self, strategy: np.ndarray) -> np.ndarray:
        """Snap a probability vector to the nearest representable grid point."""
        return self.to_probabilities(self.to_counts(strategy))

    def quantization_error(self, strategy: np.ndarray) -> float:
        """Largest per-entry deviation introduced by quantisation."""
        probabilities = ensure_probability_vector(strategy, "strategy")
        return float(np.abs(self.quantize(probabilities) - probabilities).max())


@dataclass(frozen=True)
class PayoffMapping:
    """Thermometer encoding of a payoff matrix into per-element cell counts.

    Parameters
    ----------
    payoff:
        The payoff matrix to map (must be non-negative; shift the game
        first if it has negative entries).
    cells_per_element:
        ``t``: number of cells allotted to each element.  When ``None``,
        the smallest integer covering the maximum element at unit
        resolution is used (``t = ceil(max element)``), matching the
        paper's "t is determined by the max value of matrix element".
    """

    payoff: np.ndarray
    cells_per_element: int = 0

    def __post_init__(self) -> None:
        matrix = ensure_matrix(self.payoff, "payoff")
        if np.any(matrix < 0):
            raise ValueError("payoff must be non-negative; shift the game before mapping")
        object.__setattr__(self, "payoff", matrix)
        if self.cells_per_element == 0:
            maximum = float(matrix.max())
            object.__setattr__(self, "cells_per_element", max(1, int(np.ceil(maximum))))
        ensure_int_at_least(self.cells_per_element, 1, "cells_per_element")

    @property
    def value_per_cell(self) -> float:
        """Payoff value represented by one programmed cell."""
        maximum = float(self.payoff.max())
        if maximum == 0:
            return 1.0
        return maximum / self.cells_per_element

    def levels(self) -> np.ndarray:
        """Integer cell counts (0..t) encoding each payoff element."""
        return np.rint(self.payoff / self.value_per_cell).astype(int)

    def quantized_payoff(self) -> np.ndarray:
        """The payoff matrix as actually represented on the crossbar."""
        return self.levels() * self.value_per_cell

    def encoding_error(self) -> float:
        """Largest absolute payoff error introduced by the cell encoding."""
        return float(np.abs(self.quantized_payoff() - self.payoff).max())

    def element_bit_pattern(self, row: int, column: int) -> np.ndarray:
        """Thermometer bit pattern (length ``t``) of a single element."""
        level = int(self.levels()[row, column])
        pattern = np.zeros(self.cells_per_element, dtype=np.int8)
        pattern[:level] = 1
        return pattern


@dataclass(frozen=True)
class CrossbarLayout:
    """Physical layout of one payoff crossbar (Fig. 4(a)).

    Combines a :class:`StrategyQuantizer` (``I``) and a
    :class:`PayoffMapping` (``t``) for an ``n x m`` payoff matrix.
    """

    num_row_actions: int
    num_col_actions: int
    num_intervals: int
    cells_per_element: int

    def __post_init__(self) -> None:
        ensure_int_at_least(self.num_row_actions, 1, "num_row_actions")
        ensure_int_at_least(self.num_col_actions, 1, "num_col_actions")
        ensure_int_at_least(self.num_intervals, 1, "num_intervals")
        ensure_int_at_least(self.cells_per_element, 1, "cells_per_element")

    @property
    def physical_rows(self) -> int:
        """Number of word lines: ``I x n``."""
        return self.num_intervals * self.num_row_actions

    @property
    def physical_columns(self) -> int:
        """Number of drain lines: ``I x t x m``."""
        return self.num_intervals * self.cells_per_element * self.num_col_actions

    @property
    def num_cells(self) -> int:
        """Total number of 1FeFET1R cells in the array."""
        return self.physical_rows * self.physical_columns

    def row_slice(self, action: int) -> slice:
        """Physical row range of a row-player action block."""
        if not (0 <= action < self.num_row_actions):
            raise IndexError(f"row action {action} out of range")
        start = action * self.num_intervals
        return slice(start, start + self.num_intervals)

    def column_slice(self, action: int, replica: int) -> slice:
        """Physical column range of one replica of a column-player action block."""
        if not (0 <= action < self.num_col_actions):
            raise IndexError(f"column action {action} out of range")
        if not (0 <= replica < self.num_intervals):
            raise IndexError(f"replica {replica} out of range")
        start = (action * self.num_intervals + replica) * self.cells_per_element
        return slice(start, start + self.cells_per_element)

    def bit_pattern(self, mapping: PayoffMapping) -> np.ndarray:
        """Full physical bit matrix for programming the crossbar.

        Each element's thermometer pattern is replicated across the ``I``
        row lines of its row block and the ``I`` column replicas of its
        column block.
        """
        levels = mapping.levels()
        if levels.shape != (self.num_row_actions, self.num_col_actions):
            raise ValueError(
                f"mapping shape {levels.shape} does not match layout "
                f"({self.num_row_actions}, {self.num_col_actions})"
            )
        if mapping.cells_per_element != self.cells_per_element:
            raise ValueError(
                "mapping cells_per_element does not match layout cells_per_element"
            )
        bits = np.zeros((self.physical_rows, self.physical_columns), dtype=np.int8)
        for i in range(self.num_row_actions):
            rows = self.row_slice(i)
            for j in range(self.num_col_actions):
                pattern = mapping.element_bit_pattern(i, j)
                for replica in range(self.num_intervals):
                    bits[rows, self.column_slice(j, replica)] = pattern
        return bits

    def row_activation(self, counts: np.ndarray) -> np.ndarray:
        """Word-line activation mask for quantised row-strategy ``counts``."""
        values = np.asarray(counts, dtype=int)
        if values.shape != (self.num_row_actions,):
            raise ValueError(
                f"counts must have shape ({self.num_row_actions},), got {values.shape}"
            )
        mask = np.zeros(self.physical_rows)
        for action, count in enumerate(values):
            if not (0 <= count <= self.num_intervals):
                raise ValueError(f"count {count} out of range for I={self.num_intervals}")
            start = action * self.num_intervals
            mask[start : start + count] = 1.0
        return mask

    def column_activation(self, counts: np.ndarray) -> np.ndarray:
        """Drain-line activation mask for quantised column-strategy ``counts``."""
        values = np.asarray(counts, dtype=int)
        if values.shape != (self.num_col_actions,):
            raise ValueError(
                f"counts must have shape ({self.num_col_actions},), got {values.shape}"
            )
        mask = np.zeros(self.physical_columns)
        for action, count in enumerate(values):
            if not (0 <= count <= self.num_intervals):
                raise ValueError(f"count {count} out of range for I={self.num_intervals}")
            for replica in range(count):
                mask[self.column_slice(action, replica)] = 1.0
        return mask


def layout_for_payoff(
    payoff: np.ndarray, num_intervals: int, cells_per_element: int = 0
) -> Tuple[CrossbarLayout, PayoffMapping]:
    """Convenience constructor: layout + mapping for one payoff matrix."""
    mapping = PayoffMapping(payoff, cells_per_element)
    n, m = mapping.payoff.shape
    layout = CrossbarLayout(
        num_row_actions=n,
        num_col_actions=m,
        num_intervals=num_intervals,
        cells_per_element=mapping.cells_per_element,
    )
    return layout, mapping
