"""Analog-to-digital converter model.

The crossbar source-line currents and the WTA tree output are digitised
before entering the two-phase SA logic (Fig. 3(b)/(c) shows the ADC and
sample-and-accumulate blocks).  The model quantises a current to a
configurable number of bits over a configurable full-scale range; the
quantisation step is what limits the precision of the objective values
the SA logic compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ADC:
    """A uniform quantiser from current (amperes) to digital codes.

    Parameters
    ----------
    num_bits:
        Resolution; 8 bits by default.
    full_scale_current_a:
        Current mapped to the maximum code.  Inputs above the full scale
        clip (as a real ADC would).
    """

    num_bits: int = 8
    full_scale_current_a: float = 100e-6

    def __post_init__(self) -> None:
        if self.num_bits < 1:
            raise ValueError(f"num_bits must be >= 1, got {self.num_bits}")
        if self.full_scale_current_a <= 0:
            raise ValueError(
                f"full_scale_current_a must be positive, got {self.full_scale_current_a}"
            )

    @property
    def num_levels(self) -> int:
        """Number of quantisation levels."""
        return 2**self.num_bits

    @property
    def lsb_current_a(self) -> float:
        """Current corresponding to one least-significant bit."""
        return self.full_scale_current_a / (self.num_levels - 1)

    def quantize(self, current_a):
        """Convert current(s) to integer codes (clipping at full scale)."""
        values = np.asarray(current_a, dtype=float)
        if np.any(values < 0):
            raise ValueError("ADC input currents must be non-negative")
        codes = np.rint(np.clip(values, 0.0, self.full_scale_current_a) / self.lsb_current_a)
        codes = codes.astype(int)
        if np.isscalar(current_a) or codes.ndim == 0:
            return int(codes)
        return codes

    def to_current(self, codes):
        """Convert digital codes back to the reconstructed current value(s)."""
        values = np.asarray(codes, dtype=float) * self.lsb_current_a
        if np.isscalar(codes) or values.ndim == 0:
            return float(values)
        return values

    def convert(self, current_a):
        """Quantise and reconstruct: the current as the SA logic perceives it."""
        return self.to_current(self.quantize(current_a))
