"""The 1FeFET1R compute cell.

The paper adopts the 1FeFET1R structure of its reference [25]: a FeFET in
series with an integrated resistor.  When the stored bit is 1 and both
the word line (gate, carrying the ``p`` input) and the drain line
(carrying the ``q`` input) are driven, the cell conducts a current set by
the series resistor — which suppresses the FeFET's ON-current
variability (Fig. 2(c)/(d)) and makes the cell behave as the product
``i = p * m_i * q`` for binary ``p``/``q`` activations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.corners import ProcessCorner, TT
from repro.hardware.fefet import FeFET, FeFETParameters
from repro.hardware.noise import PAPER_VARIABILITY, VariabilityModel
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class CellParameters:
    """Electrical parameters of the 1FeFET1R cell.

    The unit ON current is the current one conducting cell contributes to
    its source line; Fig. 7(a) of the paper shows roughly 0.5 uA per
    activated cell for the 64x64 array, which is the default here.
    """

    unit_on_current_a: float = 0.5e-6
    nominal_resistance_ohm: float = 2.0e6
    read_voltage_v: float = 1.0

    def __post_init__(self) -> None:
        if self.unit_on_current_a <= 0:
            raise ValueError(f"unit_on_current_a must be positive, got {self.unit_on_current_a}")
        if self.nominal_resistance_ohm <= 0:
            raise ValueError(
                f"nominal_resistance_ohm must be positive, got {self.nominal_resistance_ohm}"
            )


class OneFeFETOneRCell:
    """A single 1FeFET1R cell with static variability.

    The cell current is dominated by the series resistor, so the static
    per-cell deviation combines the (suppressed) FeFET V_TH sensitivity
    and the resistor spread, both captured by
    :class:`~repro.hardware.noise.VariabilityModel`.
    """

    def __init__(
        self,
        parameters: Optional[CellParameters] = None,
        fefet_parameters: Optional[FeFETParameters] = None,
        variability: Optional[VariabilityModel] = None,
        corner: ProcessCorner = TT,
        seed: SeedLike = None,
    ) -> None:
        self.parameters = parameters or CellParameters()
        self.variability = variability if variability is not None else PAPER_VARIABILITY
        self.corner = corner
        rng = as_generator(seed)
        self.fefet = FeFET(
            parameters=fefet_parameters,
            variability=self.variability,
            corner=corner,
            seed=rng,
        )
        # Static multiplicative deviation of this cell's ON current.
        self._current_factor = float(self.variability.sample_cell_factors((), seed=rng))

    @property
    def stored_bit(self) -> int:
        """The payoff bit stored in the cell's FeFET."""
        return self.fefet.stored_bit

    def program(self, bit: int) -> None:
        """Store ``bit`` in the cell."""
        self.fefet.program(bit)

    @property
    def on_current_a(self) -> float:
        """This cell's ON current including static variability and corner."""
        return (
            self.parameters.unit_on_current_a * self._current_factor * self.corner.nmos_drive
        )

    def current_a(self, wordline_active: bool, drainline_active: bool) -> float:
        """Cell current for the given line activations.

        Implements ``i = p * m * q``: the cell conducts its ON current only
        when the stored bit is 1 and both lines are driven; otherwise it
        contributes only the FeFET's OFF leakage.
        """
        if self.stored_bit == 1 and wordline_active and drainline_active:
            return self.on_current_a
        if wordline_active and drainline_active:
            # Selected but storing 0: OFF leakage through the high-V_TH FeFET.
            return self.fefet.parameters.off_current_floor_a
        return 0.0
