"""Area model of the C-Nash datapath.

The paper motivates FeFET CiM partly through density: the 1FeFET1R cell
is compact and CMOS-compatible.  This model estimates the silicon area of
a mapped game — crossbar cells, WTA trees, ADCs, drivers and the SA-logic
block — at a configurable technology node, so that design-space sweeps
(interval count, cells per element, game size) can report area next to
latency and energy.  Figures are first-order estimates in the spirit of
DESTINY-style modelling, exposed entirely through parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.bicrossbar import BiCrossbar


@dataclass(frozen=True)
class AreaParameters:
    """Per-component area figures (square micrometres, 28 nm defaults)."""

    cell_area_um2: float = 0.06
    wta_cell_area_um2: float = 4.0
    adc_area_um2: float = 1500.0
    wordline_driver_area_um2: float = 1.2
    bitline_driver_area_um2: float = 1.2
    sa_logic_area_um2: float = 5000.0

    def __post_init__(self) -> None:
        for label, value in (
            ("cell_area_um2", self.cell_area_um2),
            ("wta_cell_area_um2", self.wta_cell_area_um2),
            ("adc_area_um2", self.adc_area_um2),
            ("wordline_driver_area_um2", self.wordline_driver_area_um2),
            ("bitline_driver_area_um2", self.bitline_driver_area_um2),
            ("sa_logic_area_um2", self.sa_logic_area_um2),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")


@dataclass(frozen=True)
class AreaBreakdown:
    """Estimated area of one mapped C-Nash instance (square micrometres)."""

    crossbar_um2: float
    wta_um2: float
    adc_um2: float
    drivers_um2: float
    sa_logic_um2: float

    @property
    def total_um2(self) -> float:
        """Total estimated area."""
        return (
            self.crossbar_um2 + self.wta_um2 + self.adc_um2 + self.drivers_um2 + self.sa_logic_um2
        )

    @property
    def total_mm2(self) -> float:
        """Total estimated area in square millimetres."""
        return self.total_um2 * 1e-6

    def fractions(self) -> dict:
        """Per-component share of the total area."""
        total = self.total_um2
        if total == 0:
            return {"crossbar": 0.0, "wta": 0.0, "adc": 0.0, "drivers": 0.0, "sa_logic": 0.0}
        return {
            "crossbar": self.crossbar_um2 / total,
            "wta": self.wta_um2 / total,
            "adc": self.adc_um2 / total,
            "drivers": self.drivers_um2 / total,
            "sa_logic": self.sa_logic_um2 / total,
        }


@dataclass(frozen=True)
class CNashAreaModel:
    """Area estimator for one mapped bi-crossbar instance."""

    num_crossbar_cells: int
    num_wta_cells: int
    num_wordlines: int
    num_bitlines: int
    num_adcs: int = 4
    parameters: AreaParameters = AreaParameters()

    def __post_init__(self) -> None:
        if self.num_crossbar_cells < 1:
            raise ValueError("num_crossbar_cells must be >= 1")
        if min(self.num_wta_cells, self.num_wordlines, self.num_bitlines, self.num_adcs) < 0:
            raise ValueError("component counts must be non-negative")

    @classmethod
    def for_bicrossbar(
        cls, bicrossbar: BiCrossbar, parameters: AreaParameters = AreaParameters()
    ) -> "CNashAreaModel":
        """Build the model matching a concrete bi-crossbar instance."""
        row_layout = bicrossbar.row_crossbar.layout
        col_layout = bicrossbar.col_crossbar.layout
        return cls(
            num_crossbar_cells=bicrossbar.total_cells,
            num_wta_cells=bicrossbar.total_wta_cells,
            num_wordlines=row_layout.physical_rows + col_layout.physical_rows,
            num_bitlines=row_layout.physical_columns + col_layout.physical_columns,
            parameters=parameters,
        )

    def breakdown(self) -> AreaBreakdown:
        """Estimate the per-component areas."""
        p = self.parameters
        return AreaBreakdown(
            crossbar_um2=self.num_crossbar_cells * p.cell_area_um2,
            wta_um2=self.num_wta_cells * p.wta_cell_area_um2,
            adc_um2=self.num_adcs * p.adc_area_um2,
            drivers_um2=(
                self.num_wordlines * p.wordline_driver_area_um2
                + self.num_bitlines * p.bitline_driver_area_um2
            ),
            sa_logic_um2=p.sa_logic_area_um2,
        )

    @property
    def total_um2(self) -> float:
        """Total estimated area in square micrometres."""
        return self.breakdown().total_um2
