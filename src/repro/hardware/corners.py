"""Process corners for the peripheral CMOS circuitry.

The paper validates the WTA tree across the standard five process corners
(Fig. 7(b)): tt (typical), ss (slow NMOS / slow PMOS), ff (fast/fast),
snfp (slow NMOS / fast PMOS) and fnsp (fast NMOS / slow PMOS).  The
behavioural models in this package use a corner's drive-strength and
threshold scaling factors to shift current levels and latencies the same
way a SPICE corner library would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ProcessCorner:
    """Scaling factors describing one process corner.

    Attributes
    ----------
    name:
        Canonical corner name (``"tt"``, ``"ss"``, ``"ff"``, ``"snfp"``, ``"fnsp"``).
    nmos_drive:
        NMOS drive-current multiplier relative to typical.
    pmos_drive:
        PMOS drive-current multiplier relative to typical.
    vth_shift_mv:
        Threshold-voltage shift in millivolts applied to FeFET read
        transistors (positive = slower devices).
    """

    name: str
    nmos_drive: float
    pmos_drive: float
    vth_shift_mv: float

    def __post_init__(self) -> None:
        if self.nmos_drive <= 0 or self.pmos_drive <= 0:
            raise ValueError(
                f"drive multipliers must be positive, got nmos={self.nmos_drive}, pmos={self.pmos_drive}"
            )

    @property
    def mirror_gain(self) -> float:
        """Current-mirror gain of the WTA cell at this corner.

        The WTA cell's cascode mirror is built from both device types, so
        its copy accuracy tracks the geometric mean of the two drives.
        """
        return float((self.nmos_drive * self.pmos_drive) ** 0.5)

    @property
    def latency_scale(self) -> float:
        """Latency multiplier relative to the typical corner (slower drive = slower)."""
        return float(1.0 / self.mirror_gain)


TT = ProcessCorner(name="tt", nmos_drive=1.00, pmos_drive=1.00, vth_shift_mv=0.0)
SS = ProcessCorner(name="ss", nmos_drive=0.85, pmos_drive=0.85, vth_shift_mv=+30.0)
FF = ProcessCorner(name="ff", nmos_drive=1.15, pmos_drive=1.15, vth_shift_mv=-30.0)
SNFP = ProcessCorner(name="snfp", nmos_drive=0.85, pmos_drive=1.15, vth_shift_mv=+15.0)
FNSP = ProcessCorner(name="fnsp", nmos_drive=1.15, pmos_drive=0.85, vth_shift_mv=-15.0)

_CORNERS: Dict[str, ProcessCorner] = {
    corner.name: corner for corner in (TT, SS, FF, SNFP, FNSP)
}


def all_corners() -> List[ProcessCorner]:
    """The five corners evaluated in Fig. 7(b), typical corner first."""
    return [TT, SS, SNFP, FNSP, FF]


def get_corner(name: str) -> ProcessCorner:
    """Look up a corner by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in _CORNERS:
        raise KeyError(f"unknown process corner {name!r}; available: {', '.join(sorted(_CORNERS))}")
    return _CORNERS[key]
