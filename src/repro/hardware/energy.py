"""Energy model of the C-Nash datapath.

The paper's evaluation focuses on success rate and time-to-solution, but
the architecture's pitch rests on FeFET CiM being energy efficient; this
model provides per-iteration and per-run energy estimates (crossbar read,
WTA, ADC, SA logic) so the ablation benchmarks can also report energy.
All default figures are order-of-magnitude estimates for a 28 nm
implementation and are exposed as parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.bicrossbar import BiCrossbar


@dataclass(frozen=True)
class EnergyParameters:
    """Per-operation energy figures (joules)."""

    cell_read_energy_j: float = 2.0e-15
    wta_cell_energy_j: float = 5.0e-15
    adc_conversion_energy_j: float = 1.0e-12
    sa_logic_update_energy_j: float = 5.0e-13
    line_drive_energy_j: float = 1.0e-13

    def __post_init__(self) -> None:
        for label, value in (
            ("cell_read_energy_j", self.cell_read_energy_j),
            ("wta_cell_energy_j", self.wta_cell_energy_j),
            ("adc_conversion_energy_j", self.adc_conversion_energy_j),
            ("sa_logic_update_energy_j", self.sa_logic_update_energy_j),
            ("line_drive_energy_j", self.line_drive_energy_j),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")


@dataclass(frozen=True)
class CNashEnergyModel:
    """Per-iteration energy of the two-phase SA loop for one bi-crossbar."""

    num_crossbar_cells: int
    num_wta_cells: int
    num_adc_conversions_per_iteration: int = 4
    parameters: EnergyParameters = EnergyParameters()

    def __post_init__(self) -> None:
        if self.num_crossbar_cells < 1:
            raise ValueError("num_crossbar_cells must be >= 1")
        if self.num_wta_cells < 0:
            raise ValueError("num_wta_cells must be >= 0")
        if self.num_adc_conversions_per_iteration < 1:
            raise ValueError("num_adc_conversions_per_iteration must be >= 1")

    @classmethod
    def for_bicrossbar(cls, bicrossbar: BiCrossbar, parameters: EnergyParameters = EnergyParameters()) -> "CNashEnergyModel":
        """Build the energy model matching a concrete bi-crossbar instance."""
        return cls(
            num_crossbar_cells=bicrossbar.total_cells,
            num_wta_cells=bicrossbar.total_wta_cells,
            parameters=parameters,
        )

    @property
    def iteration_energy_j(self) -> float:
        """Energy of one SA iteration (both phases)."""
        p = self.parameters
        crossbar = 2 * self.num_crossbar_cells * p.cell_read_energy_j  # phase 1 + phase 2 reads
        wta = self.num_wta_cells * p.wta_cell_energy_j
        adc = self.num_adc_conversions_per_iteration * p.adc_conversion_energy_j
        logic = p.sa_logic_update_energy_j
        drive = 2 * p.line_drive_energy_j
        return crossbar + wta + adc + logic + drive

    def run_energy_j(self, num_iterations: int) -> float:
        """Energy of a full SA run."""
        if num_iterations < 0:
            raise ValueError(f"num_iterations must be non-negative, got {num_iterations}")
        return num_iterations * self.iteration_energy_j

    def energy_to_solution_j(self, iterations_to_solution: float) -> float:
        """Energy spent until the solution iteration."""
        if iterations_to_solution < 0:
            raise ValueError(
                f"iterations_to_solution must be non-negative, got {iterations_to_solution}"
            )
        return iterations_to_solution * self.iteration_energy_j
