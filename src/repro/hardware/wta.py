"""Winner-takes-all (WTA) cells and trees.

The MAX terms of the MAX-QUBO objective are computed in the current
domain by a tree of 2-input WTA cells (Sec. 3.3).  Each cell uses a
high-swing self-biased cascode current mirror plus a cross-coupled PMOS
pair so that its output current is ``max(I1, I2) = min(I1, I2) + |I1 - I2|``
(Eq. (10)), with a small copy error (the paper reports a 0.25 % output
offset and 0.08 ns settling time per cell, Fig. 5(c)).

The behavioural model reproduces exactly that: the maximum of the two
inputs with a relative offset drawn per cell, a latency per tree level,
and process-corner dependent scaling of both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.hardware.corners import ProcessCorner, TT
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class WTAParameters:
    """Electrical parameters of one 2-input WTA cell."""

    output_offset_fraction: float = 0.0025
    latency_ns: float = 0.08
    input_referred_noise_a: float = 1.0e-9

    def __post_init__(self) -> None:
        if self.output_offset_fraction < 0:
            raise ValueError(
                f"output_offset_fraction must be non-negative, got {self.output_offset_fraction}"
            )
        if self.latency_ns <= 0:
            raise ValueError(f"latency_ns must be positive, got {self.latency_ns}")
        if self.input_referred_noise_a < 0:
            raise ValueError(
                f"input_referred_noise_a must be non-negative, got {self.input_referred_noise_a}"
            )


class WTACell:
    """A 2-input current-mode winner-takes-all cell."""

    def __init__(
        self,
        parameters: Optional[WTAParameters] = None,
        corner: ProcessCorner = TT,
        seed: SeedLike = None,
    ) -> None:
        self.parameters = parameters or WTAParameters()
        self.corner = corner
        rng = as_generator(seed)
        # The systematic copy error of this cell's mirrors, fixed at fabrication.
        self._offset_fraction = float(
            rng.normal(0.0, self.parameters.output_offset_fraction)
        )

    @property
    def latency_ns(self) -> float:
        """Settling latency of the cell at this corner."""
        return self.parameters.latency_ns * self.corner.latency_scale

    def output_current_a(self, input_1_a: float, input_2_a: float) -> float:
        """``max(I1, I2)`` with the cell's static offset and mirror gain.

        Implements Eq. (10): the smaller input and the difference are
        copied through the cascode mirror and summed; the copy error is a
        small multiplicative offset.
        """
        if input_1_a < 0 or input_2_a < 0:
            raise ValueError("WTA input currents must be non-negative")
        smaller = min(input_1_a, input_2_a)
        extra = abs(input_1_a - input_2_a)
        ideal = smaller + extra
        return float(ideal * (1.0 + self._offset_fraction) * self.corner.mirror_gain)

    def transient_output_a(
        self, input_1_a: float, input_2_a: float, times_ns: np.ndarray
    ) -> np.ndarray:
        """First-order settling waveform of the output current.

        Used to regenerate the Fig. 5(c)/7(b)-style transient plots: the
        output settles exponentially to the static value with a time
        constant derived from the cell latency (latency = time to reach
        ~95 % of the final value).
        """
        final = self.output_current_a(input_1_a, input_2_a)
        times = np.asarray(times_ns, dtype=float)
        if np.any(times < 0):
            raise ValueError("times must be non-negative")
        time_constant = self.latency_ns / 3.0
        return final * (1.0 - np.exp(-times / time_constant))


class WTATree:
    """A binary tree of 2-input WTA cells computing the maximum of D inputs.

    For ``D`` inputs the tree needs ``2^K - 1`` cells where
    ``K = ceil(log2 D)`` (Sec. 3.3); inputs beyond a power of two are
    padded with zero current, which never wins.
    """

    def __init__(
        self,
        num_inputs: int,
        parameters: Optional[WTAParameters] = None,
        corner: ProcessCorner = TT,
        seed: SeedLike = None,
    ) -> None:
        if num_inputs < 1:
            raise ValueError(f"num_inputs must be >= 1, got {num_inputs}")
        self.num_inputs = num_inputs
        self.parameters = parameters or WTAParameters()
        self.corner = corner
        rng = as_generator(seed)
        self.num_levels = int(np.ceil(np.log2(num_inputs))) if num_inputs > 1 else 0
        padded = 2**self.num_levels
        self._cells: List[List[WTACell]] = []
        width = padded
        for _ in range(self.num_levels):
            width //= 2
            self._cells.append(
                [WTACell(self.parameters, corner=corner, seed=rng) for _ in range(width)]
            )
        # Per-level static offset factors, pre-stacked for the batched
        # evaluation path.
        self._level_offsets: List[np.ndarray] = [
            np.array([1.0 + cell._offset_fraction for cell in level])
            for level in self._cells
        ]

    @property
    def num_cells(self) -> int:
        """Total number of 2-input WTA cells in the tree (``2^K - 1``)."""
        return sum(len(level) for level in self._cells)

    @property
    def latency_ns(self) -> float:
        """Total settling latency: one cell latency per tree level."""
        if self.num_levels == 0:
            return 0.0
        return self.num_levels * self._cells[0][0].latency_ns

    def output_current_a(self, input_currents_a: np.ndarray) -> float:
        """The tree's output current: approximately ``max(inputs)``."""
        inputs = np.asarray(input_currents_a, dtype=float)
        if inputs.shape != (self.num_inputs,):
            raise ValueError(
                f"expected {self.num_inputs} input currents, got shape {inputs.shape}"
            )
        if np.any(inputs < 0):
            raise ValueError("WTA input currents must be non-negative")
        padded_width = 2**self.num_levels if self.num_levels > 0 else 1
        values = np.zeros(padded_width)
        values[: self.num_inputs] = inputs
        for level in self._cells:
            next_values = np.empty(len(level))
            for index, cell in enumerate(level):
                next_values[index] = cell.output_current_a(
                    float(values[2 * index]), float(values[2 * index + 1])
                )
            values = next_values
        return float(values[0])

    def output_currents_batch_a(self, input_currents_a: np.ndarray) -> np.ndarray:
        """Tree outputs for a ``(B, num_inputs)`` batch of input vectors.

        Every chain passes through the *same* physical tree (the per-cell
        offsets are fixed at fabrication), so the batched result is
        bit-identical to calling :meth:`output_current_a` per chain.
        """
        inputs = np.asarray(input_currents_a, dtype=float)
        if inputs.ndim != 2 or inputs.shape[1] != self.num_inputs:
            raise ValueError(
                f"expected shape (batch, {self.num_inputs}), got {inputs.shape}"
            )
        if np.any(inputs < 0):
            raise ValueError("WTA input currents must be non-negative")
        batch_size = inputs.shape[0]
        padded_width = 2**self.num_levels if self.num_levels > 0 else 1
        values = np.zeros((batch_size, padded_width))
        values[:, : self.num_inputs] = inputs
        for level, offsets in zip(self._cells, self._level_offsets):
            pairs = values.reshape(batch_size, len(level), 2)
            # Same arithmetic and operation order as WTACell.output_current_a
            # (min + |diff|, then offset, then mirror gain), so the batched
            # path rounds identically to the scalar one.
            smaller = pairs.min(axis=2)
            extra = np.abs(pairs[:, :, 0] - pairs[:, :, 1])
            values = (smaller + extra) * offsets[None, :] * self.corner.mirror_gain
        return values[:, 0]

    def relative_error(self, input_currents_a: np.ndarray) -> float:
        """Relative deviation of the tree output from the exact maximum."""
        inputs = np.asarray(input_currents_a, dtype=float)
        exact = float(inputs.max())
        if exact == 0:
            return 0.0
        return abs(self.output_current_a(inputs) - exact) / exact


def wta_cells_required(num_inputs: int) -> int:
    """Number of 2-input WTA cells needed for ``num_inputs`` (``2^K - 1``)."""
    if num_inputs < 1:
        raise ValueError(f"num_inputs must be >= 1, got {num_inputs}")
    if num_inputs == 1:
        return 0
    levels = int(np.ceil(np.log2(num_inputs)))
    return 2**levels - 1
