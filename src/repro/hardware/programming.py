"""Crossbar programming (write) model.

Mapping a game onto the bi-crossbar is not free: every 1FeFET1R cell
whose payoff bit is 1 must be programmed with a gate write pulse, and
FeFETs wear out after a finite number of program/erase cycles.  This
model estimates the one-time programming latency and energy of a mapped
game and tracks cumulative write counts against an endurance budget — the
numbers the architecture amortises over the (much cheaper) read-only SA
iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.bicrossbar import BiCrossbar
from repro.hardware.mapping import CrossbarLayout, PayoffMapping


@dataclass(frozen=True)
class ProgrammingParameters:
    """Write-path parameters of the FeFET crossbar."""

    write_pulse_ns: float = 1000.0
    write_pulse_energy_j: float = 1.0e-12
    rows_programmed_in_parallel: int = 1
    verify_read_ns: float = 10.0
    endurance_cycles: float = 1.0e10

    def __post_init__(self) -> None:
        if self.write_pulse_ns <= 0:
            raise ValueError(f"write_pulse_ns must be positive, got {self.write_pulse_ns}")
        if self.write_pulse_energy_j < 0:
            raise ValueError(
                f"write_pulse_energy_j must be non-negative, got {self.write_pulse_energy_j}"
            )
        if self.rows_programmed_in_parallel < 1:
            raise ValueError(
                "rows_programmed_in_parallel must be >= 1, got "
                f"{self.rows_programmed_in_parallel}"
            )
        if self.verify_read_ns < 0:
            raise ValueError(f"verify_read_ns must be non-negative, got {self.verify_read_ns}")
        if self.endurance_cycles <= 0:
            raise ValueError(f"endurance_cycles must be positive, got {self.endurance_cycles}")


@dataclass(frozen=True)
class ProgrammingCost:
    """Latency/energy of programming one payoff matrix onto a crossbar."""

    cells_written: int
    rows_programmed: int
    latency_s: float
    energy_j: float


class CrossbarProgrammer:
    """Estimates programming costs and tracks write wear for one crossbar."""

    def __init__(self, parameters: ProgrammingParameters = ProgrammingParameters()):
        self.parameters = parameters
        self._writes_performed = 0

    @property
    def writes_performed(self) -> int:
        """Total write pulses issued through this programmer."""
        return self._writes_performed

    def remaining_endurance_fraction(self) -> float:
        """Fraction of the endurance budget still available (worst-case cell)."""
        used = self._writes_performed / self.parameters.endurance_cycles
        return float(max(0.0, 1.0 - used))

    def cost_for_bits(self, bits: np.ndarray) -> ProgrammingCost:
        """Programming cost of writing a physical bit pattern.

        Programming proceeds row by row (``rows_programmed_in_parallel``
        rows at a time); every cell storing a 1 needs one write pulse, and
        each row group is followed by a verify read.
        """
        pattern = np.asarray(bits)
        if pattern.ndim != 2:
            raise ValueError(f"bits must be 2-D, got shape {pattern.shape}")
        if not np.all(np.isin(pattern, (0, 1))):
            raise ValueError("bits must contain only 0 and 1")
        cells_written = int(pattern.sum())
        rows = pattern.shape[0]
        parameters = self.parameters
        row_groups = int(np.ceil(rows / parameters.rows_programmed_in_parallel))
        latency_ns = row_groups * (parameters.write_pulse_ns + parameters.verify_read_ns)
        energy = cells_written * parameters.write_pulse_energy_j
        return ProgrammingCost(
            cells_written=cells_written,
            rows_programmed=rows,
            latency_s=latency_ns * 1e-9,
            energy_j=energy,
        )

    def cost_for_mapping(self, layout: CrossbarLayout, mapping: PayoffMapping) -> ProgrammingCost:
        """Programming cost of one payoff matrix in its crossbar layout."""
        return self.cost_for_bits(layout.bit_pattern(mapping))

    def cost_for_bicrossbar(self, bicrossbar: BiCrossbar) -> ProgrammingCost:
        """Programming cost of mapping a whole game (both crossbars)."""
        row_cost = self.cost_for_mapping(
            bicrossbar.row_crossbar.layout, bicrossbar.row_crossbar.mapping
        )
        col_cost = self.cost_for_mapping(
            bicrossbar.col_crossbar.layout, bicrossbar.col_crossbar.mapping
        )
        return ProgrammingCost(
            cells_written=row_cost.cells_written + col_cost.cells_written,
            rows_programmed=row_cost.rows_programmed + col_cost.rows_programmed,
            latency_s=row_cost.latency_s + col_cost.latency_s,
            energy_j=row_cost.energy_j + col_cost.energy_j,
        )

    def record_programming(self, cost: ProgrammingCost) -> None:
        """Account a performed programming operation against the endurance budget."""
        self._writes_performed += cost.cells_written

    def amortization_ratio(self, cost: ProgrammingCost, run_time_s: float) -> float:
        """Programming latency as a fraction of one SA run's latency.

        Small values mean the one-time write cost is negligible next to the
        annealing itself, which is the architecture's amortisation claim.
        """
        if run_time_s <= 0:
            raise ValueError(f"run_time_s must be positive, got {run_time_s}")
        return cost.latency_s / run_time_s
