"""Latency and time-to-solution model.

The paper derives C-Nash time-to-solution from the operational frequency
of FeFET crossbar arrays reported in its reference [29] (scaled to
1-bit/1-bit precision), the WTA settling time (0.08 ns per cell level)
and the SA-logic update.  This module provides a parametric iteration
latency model and the time-to-solution accounting used by the Fig. 10
experiment.

The D-Wave side of Fig. 10 uses per-sample timing profiles
(:mod:`repro.baselines.machines`), not this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.wta import WTAParameters, wta_cells_required
import numpy as np


@dataclass(frozen=True)
class TimingParameters:
    """Per-operation latencies of the C-Nash datapath (nanoseconds)."""

    crossbar_read_ns: float = 5.0
    adc_conversion_ns: float = 2.0
    sa_logic_update_ns: float = 2.0
    dac_drive_ns: float = 1.0
    wta_cell_latency_ns: float = 0.08

    def __post_init__(self) -> None:
        for label, value in (
            ("crossbar_read_ns", self.crossbar_read_ns),
            ("adc_conversion_ns", self.adc_conversion_ns),
            ("sa_logic_update_ns", self.sa_logic_update_ns),
            ("dac_drive_ns", self.dac_drive_ns),
            ("wta_cell_latency_ns", self.wta_cell_latency_ns),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")


@dataclass(frozen=True)
class CNashTimingModel:
    """Iteration-level timing of the two-phase SA loop.

    Parameters
    ----------
    num_row_actions, num_col_actions:
        Game size, which sets the WTA tree depths.
    parameters:
        Per-operation latencies.
    """

    num_row_actions: int
    num_col_actions: int
    parameters: TimingParameters = TimingParameters()

    def __post_init__(self) -> None:
        if self.num_row_actions < 1 or self.num_col_actions < 1:
            raise ValueError("action counts must be >= 1")

    @property
    def wta_tree_latency_ns(self) -> float:
        """Settling latency of the deeper of the two WTA trees."""
        depth_row = int(np.ceil(np.log2(self.num_row_actions))) if self.num_row_actions > 1 else 0
        depth_col = int(np.ceil(np.log2(self.num_col_actions))) if self.num_col_actions > 1 else 0
        return max(depth_row, depth_col) * self.parameters.wta_cell_latency_ns

    @property
    def phase1_latency_ns(self) -> float:
        """Phase 1: drive lines, crossbar MV read, WTA settle, ADC."""
        p = self.parameters
        return p.dac_drive_ns + p.crossbar_read_ns + self.wta_tree_latency_ns + p.adc_conversion_ns

    @property
    def phase2_latency_ns(self) -> float:
        """Phase 2: drive lines, crossbar VMV read, ADC."""
        p = self.parameters
        return p.dac_drive_ns + p.crossbar_read_ns + p.adc_conversion_ns

    @property
    def iteration_latency_ns(self) -> float:
        """One SA iteration: both phases plus the SA-logic update."""
        return self.phase1_latency_ns + self.phase2_latency_ns + self.parameters.sa_logic_update_ns

    @property
    def iteration_frequency_hz(self) -> float:
        """Iteration rate implied by the iteration latency."""
        return 1.0e9 / self.iteration_latency_ns

    def run_time_s(self, num_iterations: int) -> float:
        """Wall-clock time of one SA run of ``num_iterations`` iterations."""
        if num_iterations < 0:
            raise ValueError(f"num_iterations must be non-negative, got {num_iterations}")
        return num_iterations * self.iteration_latency_ns * 1e-9

    def time_to_solution_s(self, iterations_to_solution: float) -> float:
        """Time to reach a solution given the (average) iterations needed."""
        if iterations_to_solution < 0:
            raise ValueError(
                f"iterations_to_solution must be non-negative, got {iterations_to_solution}"
            )
        return iterations_to_solution * self.iteration_latency_ns * 1e-9


def timing_for_game_shape(num_row_actions: int, num_col_actions: int) -> CNashTimingModel:
    """Timing model with default parameters for a given game shape."""
    return CNashTimingModel(num_row_actions=num_row_actions, num_col_actions=num_col_actions)
