"""FeFET crossbar array model.

An array of 1FeFET1R cells arranged in rows (word lines, driven by the
``p`` inputs) and columns (drain lines, driven by the ``q`` inputs) with
per-column source lines that sum the cell currents.  The array model is
vectorised: instead of instantiating one Python object per cell it keeps
a matrix of stored bits and a matrix of static per-cell current factors,
which is what the Monte-Carlo robustness study (Fig. 7(a)) and the
higher-level payoff mapping operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.hardware.cell import CellParameters
from repro.hardware.corners import ProcessCorner, TT
from repro.hardware.noise import PAPER_VARIABILITY, VariabilityModel
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class CrossbarDimensions:
    """Physical dimensions of a crossbar array."""

    rows: int
    columns: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise ValueError(f"crossbar dimensions must be >= 1, got {self.rows}x{self.columns}")

    @property
    def num_cells(self) -> int:
        """Total number of cells in the array."""
        return self.rows * self.columns


class FeFETCrossbar:
    """A crossbar of 1FeFET1R cells with device-to-device variability.

    Parameters
    ----------
    rows, columns:
        Physical array size.
    cell_parameters:
        Electrical parameters shared by all cells.
    variability:
        Device-to-device and read-to-read variability model; the static
        per-cell current factors are drawn once at construction.
    corner:
        Process corner scaling the ON current.
    seed:
        Seed for the static variability sample.
    """

    def __init__(
        self,
        rows: int,
        columns: int,
        cell_parameters: Optional[CellParameters] = None,
        variability: Optional[VariabilityModel] = None,
        corner: ProcessCorner = TT,
        seed: SeedLike = None,
    ) -> None:
        self.dimensions = CrossbarDimensions(rows, columns)
        self.cell_parameters = cell_parameters or CellParameters()
        self.variability = variability if variability is not None else PAPER_VARIABILITY
        self.corner = corner
        self._rng = as_generator(seed)
        self._bits = np.zeros((rows, columns), dtype=np.int8)
        self._current_factors = self.variability.sample_cell_factors(
            (rows, columns), seed=self._rng
        )

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    @property
    def stored_bits(self) -> np.ndarray:
        """Copy of the stored bit matrix."""
        return self._bits.copy()

    def program(self, bits: np.ndarray) -> None:
        """Program the whole array with a 0/1 matrix of the array's shape."""
        matrix = np.asarray(bits)
        expected = (self.dimensions.rows, self.dimensions.columns)
        if matrix.shape != expected:
            raise ValueError(f"bits must have shape {expected}, got {matrix.shape}")
        if not np.all(np.isin(matrix, (0, 1))):
            raise ValueError("bits must contain only 0 and 1")
        self._bits = matrix.astype(np.int8)

    def program_cell(self, row: int, column: int, bit: int) -> None:
        """Program a single cell."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        self._bits[row, column] = bit

    # ------------------------------------------------------------------
    # Read operations
    # ------------------------------------------------------------------
    @property
    def unit_current_a(self) -> float:
        """Nominal ON current of one cell at this corner."""
        return self.cell_parameters.unit_on_current_a * self.corner.nmos_drive

    def effective_cell_currents(self) -> np.ndarray:
        """Per-cell ON currents including static variability (amperes)."""
        return self.unit_current_a * self._current_factors * self._bits

    def column_currents(
        self,
        row_activation: np.ndarray,
        column_activation: Optional[np.ndarray] = None,
        include_read_noise: bool = True,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Summed source-line current of every column (amperes).

        Parameters
        ----------
        row_activation:
            0/1 vector over rows (word-line drive pattern, the ``p`` input).
        column_activation:
            Optional 0/1 vector over columns (drain-line pattern, the
            ``q`` input); all columns active when omitted.
        include_read_noise:
            Add multiplicative cycle-to-cycle read noise.
        """
        rows = np.asarray(row_activation, dtype=float)
        if rows.shape != (self.dimensions.rows,):
            raise ValueError(
                f"row_activation must have shape ({self.dimensions.rows},), got {rows.shape}"
            )
        if column_activation is None:
            cols = np.ones(self.dimensions.columns)
        else:
            cols = np.asarray(column_activation, dtype=float)
            if cols.shape != (self.dimensions.columns,):
                raise ValueError(
                    f"column_activation must have shape ({self.dimensions.columns},), got {cols.shape}"
                )
        currents = self.effective_cell_currents()
        column_sums = (rows @ currents) * cols
        if include_read_noise:
            rng = as_generator(seed) if seed is not None else self._rng
            column_sums = column_sums * self.variability.sample_read_noise(
                column_sums.shape, seed=rng
            )
        return column_sums

    def total_current(
        self,
        row_activation: np.ndarray,
        column_activation: Optional[np.ndarray] = None,
        include_read_noise: bool = True,
        seed: SeedLike = None,
    ) -> float:
        """Total array current for the given activation pattern (amperes)."""
        return float(
            self.column_currents(
                row_activation,
                column_activation,
                include_read_noise=include_read_noise,
                seed=seed,
            ).sum()
        )

    # ------------------------------------------------------------------
    # Characterisation (Fig. 7(a))
    # ------------------------------------------------------------------
    def column_linearity_sweep(
        self,
        column: int = 0,
        activated_counts: Optional[np.ndarray] = None,
        include_read_noise: bool = True,
        seed: SeedLike = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Column output current versus number of activated cells.

        Programs nothing — uses the currently stored bits (callers
        typically program an all-ones column first).  Returns the
        activated-cell counts and the corresponding column currents, the
        data behind the Fig. 7(a) linearity plot.
        """
        if not (0 <= column < self.dimensions.columns):
            raise IndexError(f"column {column} out of range")
        if activated_counts is None:
            activated_counts = np.arange(self.dimensions.rows + 1)
        currents = np.empty(len(activated_counts))
        rng = as_generator(seed) if seed is not None else self._rng
        for index, count in enumerate(activated_counts):
            count = int(count)
            if not (0 <= count <= self.dimensions.rows):
                raise ValueError(f"activated count {count} out of range")
            activation = np.zeros(self.dimensions.rows)
            activation[:count] = 1.0
            currents[index] = self.column_currents(
                activation, include_read_noise=include_read_noise, seed=rng
            )[column]
        return np.asarray(activated_counts), currents
