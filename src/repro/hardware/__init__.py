"""FeFET computing-in-memory hardware substrate.

Behavioural models of every hardware block the C-Nash architecture uses:
the FeFET device and 1FeFET1R cell, the crossbar array with
device-to-device variability, the payoff/strategy mapping of Fig. 4, the
ADCs, the winner-takes-all tree, the process corners of Fig. 7(b), and
the timing / energy models used for time-to-solution accounting.
"""

from repro.hardware.adc import ADC
from repro.hardware.area import AreaBreakdown, AreaParameters, CNashAreaModel
from repro.hardware.bicrossbar import (
    BatchObjectiveBreakdown,
    BiCrossbar,
    ObjectiveBreakdown,
    PayoffCrossbar,
)
from repro.hardware.cell import CellParameters, OneFeFETOneRCell
from repro.hardware.corners import FF, FNSP, SNFP, SS, TT, ProcessCorner, all_corners, get_corner
from repro.hardware.crossbar import CrossbarDimensions, FeFETCrossbar
from repro.hardware.energy import CNashEnergyModel, EnergyParameters
from repro.hardware.fefet import FeFET, FeFETParameters
from repro.hardware.mapping import (
    CrossbarLayout,
    PayoffMapping,
    StrategyQuantizer,
    layout_for_payoff,
)
from repro.hardware.noise import IDEAL_VARIABILITY, PAPER_VARIABILITY, VariabilityModel
from repro.hardware.programming import (
    CrossbarProgrammer,
    ProgrammingCost,
    ProgrammingParameters,
)
from repro.hardware.timing import CNashTimingModel, TimingParameters, timing_for_game_shape
from repro.hardware.wta import WTACell, WTAParameters, WTATree, wta_cells_required

__all__ = [
    "FeFET",
    "FeFETParameters",
    "OneFeFETOneRCell",
    "CellParameters",
    "FeFETCrossbar",
    "CrossbarDimensions",
    "PayoffCrossbar",
    "BiCrossbar",
    "ObjectiveBreakdown",
    "BatchObjectiveBreakdown",
    "StrategyQuantizer",
    "PayoffMapping",
    "CrossbarLayout",
    "layout_for_payoff",
    "ADC",
    "WTACell",
    "WTATree",
    "WTAParameters",
    "wta_cells_required",
    "VariabilityModel",
    "PAPER_VARIABILITY",
    "IDEAL_VARIABILITY",
    "ProcessCorner",
    "TT",
    "SS",
    "FF",
    "SNFP",
    "FNSP",
    "all_corners",
    "get_corner",
    "CNashTimingModel",
    "TimingParameters",
    "timing_for_game_shape",
    "CNashEnergyModel",
    "EnergyParameters",
    "CrossbarProgrammer",
    "ProgrammingParameters",
    "ProgrammingCost",
    "CNashAreaModel",
    "AreaParameters",
    "AreaBreakdown",
]
