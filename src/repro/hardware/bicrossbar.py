"""Payoff crossbars and the C-Nash bi-crossbar compute engine.

:class:`PayoffCrossbar` wraps one physical :class:`~repro.hardware.crossbar.FeFETCrossbar`
programmed with a payoff matrix in the Fig. 4 layout and exposes the two
analog operations the architecture needs:

* ``mv``  — matrix-vector product ``M q`` (Phase 1: all word lines of a
  row block driven, drain lines selected by the quantised ``q``), one
  current per row action;
* ``vmv`` — vector-matrix-vector product ``p^T M q`` (Phase 2: word lines
  selected by ``p``, drain lines by ``q``), a single summed current.

For efficiency the per-block cell currents are pre-reduced into a
cumulative tensor ``G[i, j, a, b]`` = total current of block ``(i, j)``
when its first ``a`` rows and first ``b`` column replicas are activated,
so each evaluation is a tensor lookup instead of a full array sweep; the
numbers are identical to summing the physical array because cell
variability is static.

:class:`BiCrossbar` combines the ``M`` crossbar and the ``N^T`` crossbar
with the two WTA trees and the ADCs (Fig. 3) to evaluate the complete
MAX-QUBO objective for a quantised strategy pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.games.bimatrix import BimatrixGame
from repro.hardware.adc import ADC
from repro.hardware.cell import CellParameters
from repro.hardware.corners import ProcessCorner, TT
from repro.hardware.crossbar import FeFETCrossbar
from repro.hardware.mapping import CrossbarLayout, PayoffMapping, layout_for_payoff
from repro.hardware.noise import PAPER_VARIABILITY, VariabilityModel
from repro.hardware.wta import WTAParameters, WTATree
from repro.utils.rng import SeedLike, as_generator


class PayoffCrossbar:
    """One payoff matrix programmed onto a FeFET crossbar."""

    def __init__(
        self,
        payoff: np.ndarray,
        num_intervals: int,
        cells_per_element: int = 0,
        cell_parameters: Optional[CellParameters] = None,
        variability: Optional[VariabilityModel] = None,
        corner: ProcessCorner = TT,
        seed: SeedLike = None,
    ) -> None:
        self.layout, self.mapping = layout_for_payoff(payoff, num_intervals, cells_per_element)
        self.cell_parameters = cell_parameters or CellParameters()
        self.variability = variability if variability is not None else PAPER_VARIABILITY
        self.corner = corner
        self._rng = as_generator(seed)
        self.crossbar = FeFETCrossbar(
            rows=self.layout.physical_rows,
            columns=self.layout.physical_columns,
            cell_parameters=self.cell_parameters,
            variability=self.variability,
            corner=corner,
            seed=self._rng,
        )
        self.crossbar.program(self.layout.bit_pattern(self.mapping))
        self._block_cumulative = self._build_block_cumulative()

    # ------------------------------------------------------------------
    # Pre-reduction
    # ------------------------------------------------------------------
    def _build_block_cumulative(self) -> np.ndarray:
        """Cumulative per-block current tensor ``G[i, j, a, b]`` (amperes)."""
        layout = self.layout
        n, m, intervals = layout.num_row_actions, layout.num_col_actions, layout.num_intervals
        t = layout.cells_per_element
        currents = self.crossbar.effective_cell_currents()
        # Reshape into (n, I, m, I, t): row action, row interval, column action,
        # column replica, cell within replica.
        reshaped = currents.reshape(n, intervals, m, intervals, t)
        per_replica = reshaped.sum(axis=4)  # (n, I, m, I)
        cumulative_rows = np.cumsum(per_replica, axis=1)
        cumulative = np.cumsum(cumulative_rows, axis=3)  # (n, I, m, I)
        # Pad with zeros for "0 rows activated" / "0 replicas activated".
        padded = np.zeros((n, intervals + 1, m, intervals + 1))
        padded[:, 1:, :, 1:] = cumulative
        # Reorder to (n, m, I+1, I+1) for direct indexing.
        return np.transpose(padded, (0, 2, 1, 3))

    # ------------------------------------------------------------------
    # Scaling helpers
    # ------------------------------------------------------------------
    @property
    def unit_current_a(self) -> float:
        """Nominal single-cell ON current at this corner."""
        return self.crossbar.unit_current_a

    @property
    def value_per_cell(self) -> float:
        """Payoff value represented by a single programmed cell."""
        return self.mapping.value_per_cell

    def _apply_read_noise(self, currents: np.ndarray) -> np.ndarray:
        return currents * self.variability.sample_read_noise(currents.shape, seed=self._rng)

    # ------------------------------------------------------------------
    # Analog operations
    # ------------------------------------------------------------------
    def vmv_current_a(
        self, row_counts: np.ndarray, col_counts: np.ndarray, include_read_noise: bool = True
    ) -> float:
        """Total array current implementing ``p^T M q`` (Phase 2)."""
        row_counts, col_counts = self._validate_counts(row_counts, col_counts)
        n, m = self.layout.num_row_actions, self.layout.num_col_actions
        block = self._block_cumulative[
            np.arange(n)[:, None], np.arange(m)[None, :], row_counts[:, None], col_counts[None, :]
        ]
        total = np.array(block.sum())
        if include_read_noise:
            total = self._apply_read_noise(total)
        return float(total)

    def mv_currents_a(
        self, col_counts: np.ndarray, include_read_noise: bool = True
    ) -> np.ndarray:
        """Per-row-action currents implementing ``M q`` (Phase 1).

        All word lines of each row block are driven (the unit-vector input
        of Phase 1), so each row action's summed current encodes one
        element of ``M q``.
        """
        _, col_counts = self._validate_counts(None, col_counts)
        n, m = self.layout.num_row_actions, self.layout.num_col_actions
        intervals = self.layout.num_intervals
        block = self._block_cumulative[
            np.arange(n)[:, None], np.arange(m)[None, :], intervals, col_counts[None, :]
        ]
        currents = block.sum(axis=1)
        if include_read_noise:
            currents = self._apply_read_noise(currents)
        return currents

    # ------------------------------------------------------------------
    # Batched analog operations (one read per chain, whole batch at once)
    # ------------------------------------------------------------------
    def mv_currents_batch_a(
        self, col_counts: np.ndarray, include_read_noise: bool = True
    ) -> np.ndarray:
        """Phase-1 currents for a ``(B, m)`` batch of column strategies.

        Returns a ``(B, n)`` array; read noise is sampled for the whole
        batch in one draw.
        """
        col_counts = self._validate_batch_counts(col_counts, self.layout.num_col_actions, "col_counts")
        n, m = self.layout.num_row_actions, self.layout.num_col_actions
        intervals = self.layout.num_intervals
        block = self._block_cumulative[
            np.arange(n)[None, :, None],
            np.arange(m)[None, None, :],
            intervals,
            col_counts[:, None, :],
        ]
        currents = block.sum(axis=2)
        if include_read_noise:
            currents = self._apply_read_noise(currents)
        return currents

    def vmv_currents_batch_a(
        self,
        row_counts: np.ndarray,
        col_counts: np.ndarray,
        include_read_noise: bool = True,
    ) -> np.ndarray:
        """Phase-2 total array currents for stacked strategy batches.

        ``row_counts`` is ``(B, n)`` and ``col_counts`` ``(B, m)``; the
        result is the ``(B,)`` vector of ``p^T M q`` currents.
        """
        row_counts = self._validate_batch_counts(row_counts, self.layout.num_row_actions, "row_counts")
        col_counts = self._validate_batch_counts(col_counts, self.layout.num_col_actions, "col_counts")
        if row_counts.shape[0] != col_counts.shape[0]:
            raise ValueError(
                f"row_counts and col_counts disagree on batch size: "
                f"{row_counts.shape[0]} vs {col_counts.shape[0]}"
            )
        n, m = self.layout.num_row_actions, self.layout.num_col_actions
        block = self._block_cumulative[
            np.arange(n)[None, :, None],
            np.arange(m)[None, None, :],
            row_counts[:, :, None],
            col_counts[:, None, :],
        ]
        totals = block.sum(axis=(1, 2))
        if include_read_noise:
            totals = self._apply_read_noise(totals)
        return totals

    # ------------------------------------------------------------------
    # Decoding currents back into payoff values
    # ------------------------------------------------------------------
    def decode_vmv(self, current_a):
        """Convert Phase-2 current(s) back into ``p^T M q`` value(s).

        Accepts a scalar (returns ``float``) or a batch array (returns an
        array of the same shape).
        """
        intervals = self.layout.num_intervals
        scale = self.unit_current_a * intervals * intervals / self.value_per_cell
        values = np.asarray(current_a, dtype=float) / scale
        if values.ndim == 0:
            return float(values)
        return values

    def decode_mv(self, currents_a: np.ndarray) -> np.ndarray:
        """Convert Phase-1 currents back into the ``M q`` vector."""
        intervals = self.layout.num_intervals
        scale = self.unit_current_a * intervals * intervals / self.value_per_cell
        return np.asarray(currents_a, dtype=float) / scale

    def max_mv_current_a(self) -> float:
        """Upper bound of a Phase-1 current (used to size ADC full scale)."""
        intervals = self.layout.num_intervals
        max_level = float(self.mapping.levels().max()) if self.mapping.levels().size else 0.0
        return (
            self.unit_current_a
            * intervals
            * intervals
            * max_level
            * self.layout.num_col_actions
        )

    def _validate_counts(
        self, row_counts: Optional[np.ndarray], col_counts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        intervals = self.layout.num_intervals
        if row_counts is not None:
            row_counts = np.asarray(row_counts, dtype=int)
            if row_counts.shape != (self.layout.num_row_actions,):
                raise ValueError(
                    f"row_counts must have shape ({self.layout.num_row_actions},), got {row_counts.shape}"
                )
            if np.any(row_counts < 0) or np.any(row_counts > intervals):
                raise ValueError(f"row_counts must be within [0, {intervals}]")
        col_counts = np.asarray(col_counts, dtype=int)
        if col_counts.shape != (self.layout.num_col_actions,):
            raise ValueError(
                f"col_counts must have shape ({self.layout.num_col_actions},), got {col_counts.shape}"
            )
        if np.any(col_counts < 0) or np.any(col_counts > intervals):
            raise ValueError(f"col_counts must be within [0, {intervals}]")
        return row_counts, col_counts

    def _validate_batch_counts(
        self, counts: np.ndarray, num_actions: int, label: str
    ) -> np.ndarray:
        intervals = self.layout.num_intervals
        counts = np.asarray(counts, dtype=int)
        if counts.ndim != 2 or counts.shape[1] != num_actions:
            raise ValueError(
                f"{label} must have shape (batch, {num_actions}), got {counts.shape}"
            )
        if np.any(counts < 0) or np.any(counts > intervals):
            raise ValueError(f"{label} must be within [0, {intervals}]")
        return counts


@dataclass(frozen=True)
class ObjectiveBreakdown:
    """The three MAX-QUBO objective components as evaluated by the hardware."""

    max_row_value: float
    max_col_value: float
    vmv_value: float

    @property
    def objective(self) -> float:
        """``max(Mq) + max(N^T p) - p^T (M+N) q`` (Eq. (9))."""
        return self.max_row_value + self.max_col_value - self.vmv_value


@dataclass(frozen=True)
class BatchObjectiveBreakdown:
    """Stacked MAX-QUBO components for a whole chain batch (``(B,)`` arrays)."""

    max_row_values: np.ndarray
    max_col_values: np.ndarray
    vmv_values: np.ndarray

    @property
    def batch_size(self) -> int:
        """Number of evaluated strategy pairs."""
        return int(self.max_row_values.shape[0])

    @property
    def objective(self) -> np.ndarray:
        """Per-chain ``max(Mq) + max(N^T p) - p^T (M+N) q`` values."""
        return self.max_row_values + self.max_col_values - self.vmv_values

    def breakdown(self, index: int) -> ObjectiveBreakdown:
        """The scalar breakdown of chain ``index``."""
        return ObjectiveBreakdown(
            max_row_value=float(self.max_row_values[index]),
            max_col_value=float(self.max_col_values[index]),
            vmv_value=float(self.vmv_values[index]),
        )


class BiCrossbar:
    """The complete C-Nash datapath: two payoff crossbars, WTA trees and ADCs.

    Parameters
    ----------
    game:
        The (non-negative) game to map; games with negative payoffs are
        shifted automatically, which does not change their equilibria.
    num_intervals:
        Strategy quantisation ``I``.
    cells_per_element:
        Cells per payoff element ``t`` (0 = automatic from the max payoff).
    adc_bits:
        Resolution of the ADCs digitising the crossbar / WTA outputs.
    """

    def __init__(
        self,
        game: BimatrixGame,
        num_intervals: int,
        cells_per_element: int = 0,
        cell_parameters: Optional[CellParameters] = None,
        variability: Optional[VariabilityModel] = None,
        wta_parameters: Optional[WTAParameters] = None,
        adc_bits: int = 10,
        corner: ProcessCorner = TT,
        seed: SeedLike = None,
    ) -> None:
        rng = as_generator(seed)
        self.game = game.shifted() if (game.payoff_row.min() < 0 or game.payoff_col.min() < 0) else game
        self.num_intervals = num_intervals
        self.corner = corner
        self.row_crossbar = PayoffCrossbar(
            self.game.payoff_row,
            num_intervals,
            cells_per_element=cells_per_element,
            cell_parameters=cell_parameters,
            variability=variability,
            corner=corner,
            seed=rng,
        )
        self.col_crossbar = PayoffCrossbar(
            self.game.payoff_col.T,
            num_intervals,
            cells_per_element=cells_per_element,
            cell_parameters=cell_parameters,
            variability=variability,
            corner=corner,
            seed=rng,
        )
        n, m = self.game.shape
        self.row_wta = WTATree(n, parameters=wta_parameters, corner=corner, seed=rng)
        self.col_wta = WTATree(m, parameters=wta_parameters, corner=corner, seed=rng)
        full_scale = max(
            self.row_crossbar.max_mv_current_a(), self.col_crossbar.max_mv_current_a()
        )
        self.adc = ADC(num_bits=adc_bits, full_scale_current_a=max(full_scale, 1e-9))

    # ------------------------------------------------------------------
    # Phase 1: MAX terms
    # ------------------------------------------------------------------
    def phase1(self, p_counts: np.ndarray, q_counts: np.ndarray) -> Tuple[float, float]:
        """Compute ``max(Mq)`` and ``max(N^T p)`` through crossbars + WTA + ADC."""
        row_currents = self.row_crossbar.mv_currents_a(q_counts)
        col_currents = self.col_crossbar.mv_currents_a(p_counts)
        max_row_current = self.adc.convert(self.row_wta.output_current_a(row_currents))
        max_col_current = self.adc.convert(self.col_wta.output_current_a(col_currents))
        return (
            self.row_crossbar.decode_mv(np.array([max_row_current]))[0],
            self.col_crossbar.decode_mv(np.array([max_col_current]))[0],
        )

    # ------------------------------------------------------------------
    # Phase 2: VMV term
    # ------------------------------------------------------------------
    def phase2(self, p_counts: np.ndarray, q_counts: np.ndarray) -> float:
        """Compute ``p^T (M + N) q`` through the two crossbars + ADC."""
        row_current = self.adc.convert(self.row_crossbar.vmv_current_a(p_counts, q_counts))
        col_current = self.adc.convert(self.col_crossbar.vmv_current_a(q_counts, p_counts))
        return float(
            self.row_crossbar.decode_vmv(row_current) + self.col_crossbar.decode_vmv(col_current)
        )

    # ------------------------------------------------------------------
    # Batched phases (whole chain batch per analog read)
    # ------------------------------------------------------------------
    def phase1_batch(
        self, p_counts: np.ndarray, q_counts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Phase 1 for stacked ``(B, n)`` / ``(B, m)`` strategy batches.

        Returns the ``(B,)`` arrays of ``max(Mq)`` and ``max(N^T p)``
        values; crossbar reads, WTA trees, read-noise sampling and ADC
        conversion all operate on the whole batch at once.
        """
        row_currents = self.row_crossbar.mv_currents_batch_a(q_counts)
        col_currents = self.col_crossbar.mv_currents_batch_a(p_counts)
        max_row_currents = self.adc.convert(self.row_wta.output_currents_batch_a(row_currents))
        max_col_currents = self.adc.convert(self.col_wta.output_currents_batch_a(col_currents))
        return (
            self.row_crossbar.decode_mv(max_row_currents),
            self.col_crossbar.decode_mv(max_col_currents),
        )

    def phase2_batch(self, p_counts: np.ndarray, q_counts: np.ndarray) -> np.ndarray:
        """Phase 2 for stacked strategy batches: ``(B,)`` VMV values."""
        row_currents = self.adc.convert(
            self.row_crossbar.vmv_currents_batch_a(p_counts, q_counts)
        )
        col_currents = self.adc.convert(
            self.col_crossbar.vmv_currents_batch_a(q_counts, p_counts)
        )
        return self.row_crossbar.decode_vmv(row_currents) + self.col_crossbar.decode_vmv(
            col_currents
        )

    # ------------------------------------------------------------------
    # Full objective
    # ------------------------------------------------------------------
    def evaluate(self, p_counts: np.ndarray, q_counts: np.ndarray) -> ObjectiveBreakdown:
        """Evaluate the MAX-QUBO objective for a quantised strategy pair."""
        max_row, max_col = self.phase1(p_counts, q_counts)
        vmv = self.phase2(p_counts, q_counts)
        return ObjectiveBreakdown(max_row_value=max_row, max_col_value=max_col, vmv_value=vmv)

    def evaluate_batch(
        self, p_counts: np.ndarray, q_counts: np.ndarray
    ) -> BatchObjectiveBreakdown:
        """Evaluate the MAX-QUBO objective for a whole batch of strategy pairs."""
        max_rows, max_cols = self.phase1_batch(p_counts, q_counts)
        vmvs = self.phase2_batch(p_counts, q_counts)
        return BatchObjectiveBreakdown(
            max_row_values=max_rows, max_col_values=max_cols, vmv_values=vmvs
        )

    @property
    def total_cells(self) -> int:
        """Total number of 1FeFET1R cells across both crossbars."""
        return self.row_crossbar.layout.num_cells + self.col_crossbar.layout.num_cells

    @property
    def total_wta_cells(self) -> int:
        """Total number of 2-input WTA cells across both trees."""
        return self.row_wta.num_cells + self.col_wta.num_cells
