"""Behavioural ferroelectric FET (FeFET) device model.

The paper uses the Preisach-based compact model of its reference [27]
inside SPECTRE; the architecture, however, only relies on a few device
facts (Fig. 2):

* a FeFET stores a low-V_TH or high-V_TH state depending on the polarity
  of the last program pulse;
* reading at a gate voltage between the two thresholds yields a large
  ON/OFF current ratio;
* the bare FeFET ON current varies strongly from device to device, which
  the 1FeFET1R cell (series resistor) suppresses.

This module provides that behavioural model: program/erase with
polarity-dependent threshold switching, an I_D–V_G characteristic built
from a subthreshold-slope limited exponential that saturates at the ON
current, and device-to-device V_TH variability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hardware.corners import ProcessCorner, TT
from repro.hardware.noise import VariabilityModel, PAPER_VARIABILITY
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class FeFETParameters:
    """Nominal electrical parameters of the FeFET read path.

    Default values follow the measured characteristics reproduced in
    Fig. 2(b) of the paper: low-V_TH around 0.4 V, high-V_TH around
    1.4 V, ~60-80 mV/dec subthreshold swing and an ON current in the
    microampere range at the 1.0 V read voltage.
    """

    low_vth_v: float = 0.4
    high_vth_v: float = 1.4
    subthreshold_swing_mv_per_dec: float = 80.0
    on_current_a: float = 1.0e-6
    off_current_floor_a: float = 1.0e-12
    read_voltage_v: float = 1.0
    write_voltage_v: float = 4.0
    write_pulse_width_s: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.high_vth_v <= self.low_vth_v:
            raise ValueError(
                f"high_vth_v must exceed low_vth_v, got {self.high_vth_v} <= {self.low_vth_v}"
            )
        if self.on_current_a <= 0 or self.off_current_floor_a <= 0:
            raise ValueError("currents must be positive")
        if self.subthreshold_swing_mv_per_dec <= 0:
            raise ValueError("subthreshold swing must be positive")


class FeFET:
    """A single FeFET storing one bit in its polarization state.

    The stored bit maps to the threshold voltage: logical ``1`` is the
    low-V_TH (erased, conducting at the read voltage) state, logical
    ``0`` is the high-V_TH (programmed, non-conducting) state — matching
    Fig. 2(b) where the '1' curve turns on well below the '0' curve.
    """

    def __init__(
        self,
        parameters: Optional[FeFETParameters] = None,
        variability: Optional[VariabilityModel] = None,
        corner: ProcessCorner = TT,
        seed: SeedLike = None,
    ) -> None:
        self.parameters = parameters or FeFETParameters()
        self.variability = variability if variability is not None else PAPER_VARIABILITY
        self.corner = corner
        rng = as_generator(seed)
        # Device-to-device threshold shift is fixed at fabrication time.
        self._vth_offset_v = float(
            rng.normal(0.0, self.variability.fefet_vth_sigma_mv * 1e-3)
        ) + corner.vth_shift_mv * 1e-3
        self._stored_bit = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def stored_bit(self) -> int:
        """The logical bit currently stored (0 or 1)."""
        return self._stored_bit

    @property
    def threshold_voltage_v(self) -> float:
        """Current threshold voltage including device-to-device offset."""
        nominal = (
            self.parameters.low_vth_v if self._stored_bit == 1 else self.parameters.high_vth_v
        )
        return nominal + self._vth_offset_v

    def program(self, bit: int) -> None:
        """Program the device to store ``bit`` (0 or 1).

        Writing logical 1 corresponds to a negative gate pulse (low V_TH);
        writing logical 0 to a positive pulse (high V_TH), per Fig. 2(a).
        """
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        self._stored_bit = int(bit)

    def erase(self) -> None:
        """Erase to the conducting (logical 1) state."""
        self.program(1)

    # ------------------------------------------------------------------
    # Electrical behaviour
    # ------------------------------------------------------------------
    def drain_current_a(self, gate_voltage_v: float) -> float:
        """Drain current at the given gate voltage (drain at nominal read bias).

        Below threshold the current rises exponentially with the
        subthreshold swing; above threshold it saturates at the ON
        current scaled by the process corner drive strength.
        """
        if gate_voltage_v < 0:
            raise ValueError(f"gate voltage must be non-negative, got {gate_voltage_v}")
        params = self.parameters
        overdrive = gate_voltage_v - self.threshold_voltage_v
        swing_v = params.subthreshold_swing_mv_per_dec * 1e-3
        on_current = params.on_current_a * self.corner.nmos_drive
        if overdrive >= 0:
            return float(on_current)
        current = on_current * 10.0 ** (overdrive / swing_v)
        return float(max(current, params.off_current_floor_a))

    def read_current_a(self) -> float:
        """Drain current at the nominal read voltage."""
        return self.drain_current_a(self.parameters.read_voltage_v)

    def id_vg_curve(self, gate_voltages_v: np.ndarray) -> np.ndarray:
        """I_D–V_G sweep (used to regenerate the Fig. 2(b)-style curves)."""
        voltages = np.asarray(gate_voltages_v, dtype=float)
        return np.array([self.drain_current_a(float(v)) for v in voltages])

    def on_off_ratio(self) -> float:
        """Ratio of the read currents in the two stored states."""
        saved = self._stored_bit
        try:
            self.program(1)
            on = self.read_current_a()
            self.program(0)
            off = self.read_current_a()
        finally:
            self._stored_bit = saved
        return float(on / off)
