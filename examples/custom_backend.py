"""Register a custom Nash-solver backend and serve it end-to-end.

The collaborative-neurodynamic line of work behind the portfolio policy
thrives on *heterogeneous* solver populations, so the whole stack is
built around a pluggable ``Backend`` protocol: implement ``name``,
``capabilities()`` and ``solve(game, spec)``, register the instance, and
the backend is immediately reachable through

* the one-call facade  — ``repro.api.solve(game, backend="replicator")``
* the comparison table — ``repro.api.compare(game, backends=[...])``
* the serving layer    — ``SolveRequest(policy="replicator")`` through the
  scheduler / TCP server, with zero changes to ``service/`` code.

The example backend is a discrete-time replicator-dynamics solver (the
classic evolutionary-game-theory iteration): random initial populations,
multiplicative payoff-weighted updates, converged rest points verified
against the game and de-duplicated.

Run with::

    python examples/custom_backend.py

Set ``CNASH_SMOKE=1`` for a reduced run count (CI smoke mode).
"""

from __future__ import annotations

import os
import time

import numpy as np

import repro.api as api
from repro import BackendCapabilities, SolveReport, SolveSpec, battle_of_the_sexes
from repro.backends import register_backend
from repro.games.equilibrium import EquilibriumSet, StrategyProfile, is_epsilon_equilibrium

SMOKE = bool(os.environ.get("CNASH_SMOKE"))


class ReplicatorDynamicsBackend:
    """Discrete-time replicator dynamics from random starts.

    Options: ``steps`` (iterations per start, default 2000) and
    ``shift`` (payoff shift to keep fitnesses positive, default: auto).
    """

    name = "replicator"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            mixed_strategies=True,
            deterministic=True,
            exact=False,
            description="discrete-time replicator dynamics, random restarts",
        )

    def solve(self, game, spec: SolveSpec) -> SolveReport:
        steps = int(spec.options.get("steps", 2000))
        rng = np.random.default_rng(spec.seed)
        row, col = game.payoff_row, game.payoff_col
        # Replicator updates need positive fitness: shift both payoffs.
        shift = float(spec.options.get("shift", 1.0 - min(row.min(), col.min())))
        start = time.perf_counter()
        successes = 0
        profiles = []
        epsilon = spec.epsilon if spec.epsilon is not None else 1e-3
        for _ in range(spec.num_runs):
            p = rng.dirichlet(np.ones(game.shape[0]))
            q = rng.dirichlet(np.ones(game.shape[1]))
            for _ in range(steps):
                p = p * ((row + shift) @ q)
                p /= p.sum()
                q = q * ((col + shift).T @ p)
                q /= q.sum()
            if is_epsilon_equilibrium(game, p, q, epsilon):
                successes += 1
                profiles.append((p, q))
        distinct = EquilibriumSet(game=game, atol=1e-2)
        for p, q in profiles:
            distinct.add(StrategyProfile(p, q))
        return SolveReport(
            backend=self.name,
            game_name=game.name,
            equilibria=list(distinct),
            success_rate=successes / spec.num_runs,
            num_runs=spec.num_runs,
            wall_clock_seconds=time.perf_counter() - start,
            metadata={"steps": steps, "epsilon": epsilon},
        )


def main() -> None:
    # One line: the backend is now reachable from every entry point.
    register_backend(ReplicatorDynamicsBackend(), replace=True)

    game = battle_of_the_sexes()
    spec = SolveSpec(num_runs=10 if SMOKE else 50, seed=0)

    print("=== Through the facade ===")
    report = api.solve(game, backend="replicator", spec=spec)
    print(f"success rate {report.success_rate:.1%}, "
          f"{report.num_equilibria} distinct equilibria "
          f"({len(report.mixed_equilibria())} mixed)")

    print("\n=== In the comparison table, next to the built-ins ===")
    comparison = api.compare(game, backends=["exact", "replicator", "squbo"], spec=spec)
    print(comparison.to_table())

    print("\n=== Served through the scheduler (zero service/ changes) ===")
    from repro.service import InProcessClient, SolveRequest

    request = SolveRequest(game=game, policy="replicator", num_runs=spec.num_runs, seed=0)
    # Thread executor: worker threads share the process-wide registry.
    with InProcessClient(max_workers=2, executor="thread") as client:
        outcome = client.solve(request)
    print(f"policy={outcome.policy!r} backend={outcome.backend!r} "
          f"success_rate={outcome.success_rate:.1%} "
          f"equilibria={outcome.num_equilibria}")


if __name__ == "__main__":
    main()
