"""Reproduce the paper's solver comparison on all three benchmark games.

This is the evaluation scenario of Sec. 4.2: run C-Nash and the two
D-Wave-like S-QUBO baselines on Battle of the Sexes, the Bird Game and
the Modified Prisoner's Dilemma, then print the Table-1 success rates,
the Fig.-8 solution distributions, the Fig.-9 distinct-solution counts
and the Fig.-10 time-to-solution comparison in one go.

Run with::

    python examples/paper_benchmark_comparison.py [smoke|default|paper]

(The default "smoke" scale finishes in well under a minute; "default"
takes several minutes; "paper" replays the full 5000-run protocol.
``CNASH_SMOKE=1`` forces the smoke scale regardless of the argument.)

Every C-Nash batch underneath these experiments is produced through the
unified solver facade (:func:`repro.api.solve`).
"""

from __future__ import annotations

import os
import sys

from repro.experiments import get_scale, run_fig8, run_fig9, run_fig10, run_table1


def main() -> None:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "smoke"
    if os.environ.get("CNASH_SMOKE"):
        scale_name = "smoke"
    scale = get_scale(scale_name)
    print(f"Running the paper benchmark comparison at '{scale.name}' scale...\n")

    # All four experiments share one set of solver runs (cached per process),
    # exactly as the paper derives its tables and figures from the same runs.
    table1 = run_table1(scale, seed=0)
    fig8 = run_fig8(scale, seed=0)
    fig9 = run_fig9(scale, seed=0)
    fig10 = run_fig10(scale, seed=0)

    print(table1.render())
    print()
    print(fig8.render())
    print()
    print(fig9.render())
    print()
    print(fig10.render())

    print("\nHeadline checks:")
    for game in ("Battle of the Sexes", "Bird Game", "Modified Prisoner's Dilemma"):
        wins = table1.cnash_beats_baselines(game)
        mixed = fig8.cnash_finds_mixed(game)
        fastest = fig10.cnash_fastest(game)
        print(
            f"  {game:<30} C-Nash best success: {wins}; finds mixed NE: {mixed}; fastest: {fastest}"
        )


if __name__ == "__main__":
    main()
