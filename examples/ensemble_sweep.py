"""Ensemble sweeps: thousands of generated games as one declarative spec.

The paper evaluates three hand-picked games; the collaborative
neurodynamic line of work evaluates over *families* of generated games.
This example shows the workload IR that makes the second style cheap:

* an :class:`~repro.workloads.EnsembleSpec` describes a generator x
  parameter grid x seed range — hundreds of games in a few hundred
  bytes;
* :func:`repro.api.sweep` streams it through the service scheduler with
  bounded in-flight materialisation (the dense payoff matrices only
  ever exist inside the workers, ``max_in_flight`` at a time);
* repeating the sweep is served from the spec-keyed result cache
  without recomputing anything.

Run with::

    python examples/ensemble_sweep.py

Set ``CNASH_SMOKE=1`` for a reduced grid (CI smoke mode).
"""

from __future__ import annotations

import os

import repro.api as api
from repro import CNashConfig, EnsembleSpec, SolveSpec
from repro.service.client import InProcessClient

SMOKE = bool(os.environ.get("CNASH_SMOKE"))


def main() -> None:
    ensemble = EnsembleSpec(
        generator="random",
        grid={
            "num_row_actions": [2, 3] if SMOKE else [2, 4, 8],
            "payoff_range": [[0.0, 4.0], [0.0, 8.0]],
        },
        seeds=3 if SMOKE else 25,
        base_params={"integer_payoffs": True},
        name="uniform random games",
    )
    print(f"Ensemble: {ensemble.describe()}")
    print(f"Wire form: {ensemble.to_dict()}")

    spec = SolveSpec(
        num_runs=4 if SMOKE else 16,
        seed=0,  # seeded => every job is cacheable
        options={"config": CNashConfig(num_intervals=4, num_iterations=250)},
    )

    # One long-lived in-process client = one scheduler + one cache for
    # both passes.  (Point the client at a TCP server for remote serving.)
    with InProcessClient(executor="thread", shard_size=8) as client:
        first = api.sweep(ensemble, backends="cnash", spec=spec, client=client,
                          max_in_flight=16)
        print(f"\ncold sweep : {first.summary()}")

        second = api.sweep(ensemble, backends="cnash", spec=spec, client=client,
                           max_in_flight=16)
        print(f"warm sweep : {second.summary()}")
        assert second.cache_hit_rate is not None and second.cache_hit_rate >= 0.95

    # Per-game reports stay lightweight (batches are dropped by default).
    hardest = min(first.reports, key=lambda report: report.success_rate)
    print(f"\nhardest instance: {hardest.game_name} "
          f"(success {hardest.success_rate:.1%}, "
          f"{hardest.num_equilibria} distinct equilibria)")


if __name__ == "__main__":
    main()
