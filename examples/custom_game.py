"""Solve a custom decision-making problem with C-Nash.

The scenario: two competing ride-sharing platforms each choose how to
split a fixed promotion budget across three city zones (downtown,
airport, suburbs).  Riders multi-home, so payoffs depend on both
platforms' choices: concentrating where the rival is absent wins that
zone outright, while head-to-head spending splits it.  The resulting
bimatrix game has both pure and mixed equilibria; this example builds the
payoff matrices from the scenario parameters and then runs the whole
solver comparison — C-Nash, the ground-truth enumeration solver and the
pure-only S-QUBO baseline — through one :func:`repro.api.compare` call.

Run with::

    python examples/custom_game.py

Set ``CNASH_SMOKE=1`` for a reduced run count (CI smoke mode).
"""

from __future__ import annotations

import os

import numpy as np

import repro.api as api
from repro import BimatrixGame, CNashConfig, GameSpec, SolveSpec
from repro.games.equilibrium import EquilibriumSet

SMOKE = bool(os.environ.get("CNASH_SMOKE"))

ZONES = ("downtown", "airport", "suburbs")
ZONE_VALUE = np.array([6.0, 4.0, 2.0])  # ride demand per zone
HEAD_TO_HEAD_SHARE = 0.5  # zone value split when both platforms promote there
SPILLOVER = 0.25  # share of an uncontested neighbouring zone captured anyway


def build_promotion_game() -> BimatrixGame:
    """Payoff matrices of the zone-promotion game."""
    num_zones = len(ZONES)
    payoff_row = np.zeros((num_zones, num_zones))
    payoff_col = np.zeros((num_zones, num_zones))
    for i in range(num_zones):
        for j in range(num_zones):
            if i == j:
                payoff_row[i, j] = HEAD_TO_HEAD_SHARE * ZONE_VALUE[i]
                payoff_col[i, j] = HEAD_TO_HEAD_SHARE * ZONE_VALUE[j]
            else:
                payoff_row[i, j] = ZONE_VALUE[i] + SPILLOVER * ZONE_VALUE[j]
                payoff_col[i, j] = ZONE_VALUE[j] + SPILLOVER * ZONE_VALUE[i]
    return BimatrixGame(payoff_row, payoff_col, name="Zone promotion game")


def describe(profile, label: str) -> None:
    kind = "pure " if profile.is_pure(atol=1e-3) else "mixed"
    p_text = ", ".join(f"{zone}={value:.2f}" for zone, value in zip(ZONES, profile.p))
    q_text = ", ".join(f"{zone}={value:.2f}" for zone, value in zip(ZONES, profile.q))
    print(f"  [{label}] [{kind}] platform A: ({p_text})  platform B: ({q_text})")


def main() -> None:
    # An inline GameSpec wraps custom dense payoffs in the same workload
    # IR the library/generator sources use — its fingerprint is
    # byte-compatible with the raw BimatrixGame, so caches and services
    # treat the two identically.
    game_spec = GameSpec.inline(build_promotion_game())
    game = game_spec.materialize()
    print(f"Game: {game.name}, payoffs:\n{np.round(game.payoff_row, 2)}")

    # One facade call runs every backend on the game; per-backend spec
    # overrides give the stochastic solvers their own budgets.
    spec = SolveSpec(
        num_runs=20 if SMOKE else 60,
        seed=0,
        options={"config": CNashConfig(num_intervals=8, num_iterations=4000)},
    )
    comparison = api.compare(
        game_spec,
        backends=["exact", "cnash", "squbo"],
        spec=spec,
        overrides={"squbo": SolveSpec(num_runs=40, seed=1, options={"num_sweeps": 300})},
    )
    print()
    print(comparison.to_table())

    truth = comparison.report("exact")
    for name in ("exact", "cnash", "squbo"):
        report = comparison.report(name)
        print(f"\n{report.backend}:")
        for profile in report.equilibria:
            describe(profile, name)

    cnash = comparison.report("cnash")
    truth_set = EquilibriumSet.from_profiles(game, truth.equilibria)
    matched = truth_set.count_found(cnash.equilibria, atol=0.1)
    print(f"\nC-Nash matched {matched}/{truth.num_equilibria} ground-truth equilibria.")
    if comparison.finds_mixed("cnash") and not comparison.finds_mixed("squbo"):
        print(
            "C-Nash recovered the mixed promotion strategies that the pure-only "
            "S-QUBO baseline structurally cannot represent."
        )


if __name__ == "__main__":
    main()
