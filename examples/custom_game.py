"""Solve a custom decision-making problem with C-Nash.

The scenario: two competing ride-sharing platforms each choose how to
split a fixed promotion budget across three city zones (downtown,
airport, suburbs).  Riders multi-home, so payoffs depend on both
platforms' choices: concentrating where the rival is absent wins that
zone outright, while head-to-head spending splits it.  The resulting
bimatrix game has both pure and mixed equilibria; this example builds the
payoff matrices from the scenario parameters, finds the equilibria with
C-Nash, cross-checks them with the ground-truth enumeration solvers, and
compares against the S-QUBO baseline which only ever reports pure
solutions.

Run with::

    python examples/custom_game.py
"""

from __future__ import annotations

import numpy as np

from repro import BimatrixGame, CNashConfig, CNashSolver, support_enumeration
from repro.baselines import DWaveLikeSolver

ZONES = ("downtown", "airport", "suburbs")
ZONE_VALUE = np.array([6.0, 4.0, 2.0])  # ride demand per zone
HEAD_TO_HEAD_SHARE = 0.5  # zone value split when both platforms promote there
SPILLOVER = 0.25  # share of an uncontested neighbouring zone captured anyway


def build_promotion_game() -> BimatrixGame:
    """Payoff matrices of the zone-promotion game."""
    num_zones = len(ZONES)
    payoff_row = np.zeros((num_zones, num_zones))
    payoff_col = np.zeros((num_zones, num_zones))
    for i in range(num_zones):
        for j in range(num_zones):
            if i == j:
                payoff_row[i, j] = HEAD_TO_HEAD_SHARE * ZONE_VALUE[i]
                payoff_col[i, j] = HEAD_TO_HEAD_SHARE * ZONE_VALUE[j]
            else:
                payoff_row[i, j] = ZONE_VALUE[i] + SPILLOVER * ZONE_VALUE[j]
                payoff_col[i, j] = ZONE_VALUE[j] + SPILLOVER * ZONE_VALUE[i]
    return BimatrixGame(payoff_row, payoff_col, name="Zone promotion game")


def describe(profile, label: str) -> None:
    kind = "pure " if profile.is_pure(atol=1e-3) else "mixed"
    p_text = ", ".join(f"{zone}={value:.2f}" for zone, value in zip(ZONES, profile.p))
    q_text = ", ".join(f"{zone}={value:.2f}" for zone, value in zip(ZONES, profile.q))
    print(f"  [{label}] [{kind}] platform A: ({p_text})  platform B: ({q_text})")


def main() -> None:
    game = build_promotion_game()
    print(f"Game: {game.name}, payoffs:\n{np.round(game.payoff_row, 2)}")

    print("\nGround truth (support enumeration):")
    ground_truth = support_enumeration(game)
    for profile in ground_truth:
        describe(profile, "truth")

    print("\nC-Nash solver:")
    solver = CNashSolver(game, CNashConfig(num_intervals=8, num_iterations=4000))
    batch = solver.solve_batch(num_runs=60, seed=0)
    found = solver.distinct_solutions(batch)
    print(f"  success rate {batch.success_rate:.1%}, "
          f"{len(found)} distinct solutions, "
          f"{ground_truth.count_found(list(found), atol=0.1)}/{len(ground_truth)} matched")
    for profile in found:
        describe(profile, "c-nash")

    print("\nS-QUBO baseline (pure strategies only):")
    baseline = DWaveLikeSolver(game, num_sweeps=300, seed=0)
    baseline_batch = baseline.sample_batch(40, seed=1)
    baseline_found = baseline.distinct_solutions(baseline_batch)
    print(f"  success rate {baseline_batch.success_rate:.1%}, "
          f"{len(baseline_found)} distinct solutions")
    for profile in baseline_found:
        describe(profile, "s-qubo")

    mixed_found = [profile for profile in found if not profile.is_pure(atol=1e-3)]
    if mixed_found:
        print(
            "\nC-Nash recovered the mixed promotion strategies that the pure-only "
            "S-QUBO baseline structurally cannot represent."
        )


if __name__ == "__main__":
    main()
