"""Hardware-in-the-loop solving and robustness exploration.

This example exercises the FeFET CiM hardware model directly:

1. characterises a 64x64 crossbar column (the Fig.-7(a) linearity study),
2. checks the WTA tree across process corners (Fig. 7(b)),
3. solves the Bird Game with the objective evaluated *through* the
   bi-crossbar datapath (device variability, read noise, ADC
   quantisation, WTA offsets) and compares against the ideal software
   evaluation,
4. reports the per-iteration latency and energy of the mapped game.

Run with::

    python examples/hardware_in_the_loop.py

Set ``CNASH_SMOKE=1`` for reduced Monte-Carlo and run counts (CI smoke
mode).
"""

from __future__ import annotations

import os

import numpy as np

import repro.api as api
from repro import CNashConfig, CNashSolver, SolveSpec, bird_game

SMOKE = bool(os.environ.get("CNASH_SMOKE"))
from repro.experiments.fig7_robustness import run_crossbar_linearity, run_wta_corners
from repro.hardware import (
    BiCrossbar,
    CNashEnergyModel,
    PAPER_VARIABILITY,
    timing_for_game_shape,
)


def characterise_crossbar() -> None:
    print("=== Crossbar Monte-Carlo linearity (Fig. 7a) ===")
    result = run_crossbar_linearity(
        rows=64, columns=64, num_monte_carlo=10 if SMOKE else 50, seed=0
    )
    print(f"  linear-fit R^2        : {result.linearity_r2:.6f}")
    print(f"  max relative spread   : {result.max_relative_spread:.4f}")
    print(f"  mean current @ 64 rows: {result.mean_currents_ua[-1]:.2f} uA")


def characterise_wta() -> None:
    print("\n=== WTA tree across process corners (Fig. 7b) ===")
    for corner in run_wta_corners(seed=0):
        print(
            f"  {corner.corner_name:<5} correct={corner.selected_correct_max} "
            f"error={corner.relative_error:.4f} latency={corner.latency_ns:.3f} ns"
        )


def solve_with_hardware() -> None:
    print("\n=== Solving the Bird Game through the hardware model ===")
    game = bird_game()
    num_runs = 8 if SMOKE else 20
    iterations = 1200 if SMOKE else 3000
    # Software (ideal-evaluator) batch through the unified facade; the
    # hardware run keeps the solver class so the paper's variability
    # model can be injected explicitly.
    software_report = api.solve(
        game,
        backend="cnash",
        spec=SolveSpec(
            num_runs=num_runs,
            seed=0,
            options={"config": CNashConfig(num_intervals=8, num_iterations=iterations)},
        ),
    )
    hardware = CNashSolver(
        game,
        CNashConfig(num_intervals=8, num_iterations=iterations, use_hardware=True),
        variability=PAPER_VARIABILITY,
        seed=1,
    )
    hardware_batch = hardware.solve_batch(num_runs=num_runs, seed=0)
    print(f"  software (exact) success rate : {software_report.success_rate:.1%}")
    print(f"  hardware (noisy) success rate : {hardware_batch.success_rate:.1%}")
    found = hardware.distinct_solutions(hardware_batch)
    print(f"  distinct solutions via hardware: {len(found)}")
    for profile in found:
        kind = "pure " if profile.is_pure(atol=1e-3) else "mixed"
        print(f"    [{kind}] p={np.round(profile.p, 3)}, q={np.round(profile.q, 3)}")


def report_cost_model() -> None:
    print("\n=== Per-iteration latency and energy of the mapped Bird Game ===")
    game = bird_game()
    bicrossbar = BiCrossbar(game, num_intervals=8, seed=0)
    timing = timing_for_game_shape(*game.shape)
    energy = CNashEnergyModel.for_bicrossbar(bicrossbar)
    print(f"  crossbar cells (both arrays)  : {bicrossbar.total_cells}")
    print(f"  WTA cells (both trees)        : {bicrossbar.total_wta_cells}")
    print(f"  iteration latency             : {timing.iteration_latency_ns:.2f} ns")
    print(f"  iteration rate                : {timing.iteration_frequency_hz / 1e6:.1f} M iterations/s")
    print(f"  iteration energy              : {energy.iteration_energy_j * 1e12:.2f} pJ")
    print(f"  15000-iteration run (paper)   : {timing.run_time_s(15000) * 1e6:.1f} us, "
          f"{energy.run_energy_j(15000) * 1e9:.1f} nJ")


def main() -> None:
    characterise_crossbar()
    characterise_wta()
    solve_with_hardware()
    report_cost_model()


if __name__ == "__main__":
    main()
