"""Quickstart: solve Battle of the Sexes through the unified solver API.

Everything goes through the one-call facade (:mod:`repro.api`): one
``api.solve`` call runs a batch of C-Nash simulated-annealing runs on
the paper's simplest benchmark game, one ``api.solve(..., "exact")``
call provides the ground truth, and the report objects carry the
success rate, the distinct equilibria (including the mixed one the
S-QUBO quantum baselines cannot represent) and the timing.

Run with::

    python examples/quickstart.py

Set ``CNASH_SMOKE=1`` for a reduced run count (CI smoke mode).
"""

from __future__ import annotations

import os

import numpy as np

import repro.api as api
from repro import CNashConfig, GameSpec, SolveSpec
from repro.games.equilibrium import EquilibriumSet

#: CI smoke mode: same structure, reduced run budget.
SMOKE = bool(os.environ.get("CNASH_SMOKE"))


def describe(profile, label: str) -> None:
    kind = "pure " if profile.is_pure(atol=1e-3) else "mixed"
    print(f"  [{label}] [{kind}] p={np.round(profile.p, 3)}, q={np.round(profile.q, 3)}")


def main() -> None:
    # Games are *described*, not constructed: a GameSpec is a ~60-byte
    # declarative workload (the string "library:battle_of_the_sexes"
    # works everywhere a game does), materialised on demand.
    game_spec = GameSpec.library("battle_of_the_sexes")
    game = game_spec.materialize()
    print(f"Game: {game.name}  (shape {game.shape}, spec {game_spec.to_dict()})")
    print("Row payoffs:\n", game.payoff_row)
    print("Column payoffs:\n", game.payoff_col)

    # Ground truth through the same facade (the paper uses Nashpy).
    truth = api.solve(game_spec, backend="exact")
    print(f"\nGround-truth equilibria ({truth.num_equilibria}):")
    for profile in truth.equilibria:
        describe(profile, "truth")

    # C-Nash through the facade: probabilities on a 1/6 grid (the mixed
    # equilibrium of this game lies on thirds, so it is exactly
    # representable), 2000 two-phase SA iterations per run.
    spec = SolveSpec(
        num_runs=20 if SMOKE else 100,
        seed=0,
        options={"config": CNashConfig(num_intervals=6, num_iterations=2000)},
    )
    report = api.solve(game_spec, backend="cnash", spec=spec)

    print(f"\nC-Nash results over {report.num_runs} SA runs "
          f"({report.wall_clock_seconds:.1f}s wall clock):")
    print(f"  success rate          : {report.success_rate:.1%}")
    batch = report.batch_result()
    fractions = batch.classification_fractions()
    print(f"  pure / mixed / error  : {fractions['pure']:.1%} / "
          f"{fractions['mixed']:.1%} / {fractions['error']:.1%}")

    truth_set = EquilibriumSet.from_profiles(game, truth.equilibria)
    matched = truth_set.count_found(report.equilibria, atol=0.1)
    print(f"  distinct solutions    : {report.num_equilibria} found, "
          f"{matched}/{truth.num_equilibria} ground-truth equilibria matched")
    for profile in report.equilibria:
        describe(profile, "c-nash")

    # Estimated hardware time-to-solution from the FeFET timing model
    # (the solver classes stay available underneath the facade).
    from repro import CNashSolver

    solver = CNashSolver(game, spec.options["config"])
    time_to_solution = solver.time_to_solution_s(batch)
    print(f"  est. hardware time-to-solution: {time_to_solution * 1e6:.2f} us")


if __name__ == "__main__":
    main()
