"""Quickstart: solve Battle of the Sexes with the C-Nash solver.

Runs a batch of C-Nash simulated-annealing runs on the paper's simplest
benchmark game, verifies the solutions against the ground-truth
equilibrium set, and prints the success rate, the solution-type
distribution and every distinct equilibrium found (including the mixed
one the S-QUBO quantum baselines cannot represent).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CNashConfig, CNashSolver, battle_of_the_sexes, support_enumeration


def main() -> None:
    game = battle_of_the_sexes()
    print(f"Game: {game.name}  (shape {game.shape})")
    print("Row payoffs:\n", game.payoff_row)
    print("Column payoffs:\n", game.payoff_col)

    # Ground truth from the support-enumeration solver (the paper uses Nashpy).
    ground_truth = support_enumeration(game)
    print(f"\nGround-truth equilibria ({len(ground_truth)}):")
    for profile in ground_truth:
        kind = "pure " if profile.is_pure() else "mixed"
        print(f"  [{kind}] p={np.round(profile.p, 3)}, q={np.round(profile.q, 3)}")

    # Configure and run the C-Nash solver: probabilities on a 1/6 grid (the
    # mixed equilibrium of this game lies on thirds, so it is exactly
    # representable), 2000 two-phase SA iterations per run, 100 runs.
    config = CNashConfig(num_intervals=6, num_iterations=2000)
    solver = CNashSolver(game, config)
    batch = solver.solve_batch(num_runs=100, seed=0)

    print(f"\nC-Nash results over {batch.num_runs} SA runs "
          f"({batch.wall_clock_seconds:.1f}s wall clock):")
    print(f"  success rate          : {batch.success_rate:.1%}")
    fractions = batch.classification_fractions()
    print(f"  pure / mixed / error  : {fractions['pure']:.1%} / "
          f"{fractions['mixed']:.1%} / {fractions['error']:.1%}")

    found = solver.distinct_solutions(batch)
    matched = ground_truth.count_found(list(found), atol=0.1)
    print(f"  distinct solutions    : {len(found)} found, "
          f"{matched}/{len(ground_truth)} ground-truth equilibria matched")
    for profile in found:
        kind = "pure " if profile.is_pure(atol=1e-3) else "mixed"
        print(f"    [{kind}] p={np.round(profile.p, 3)}, q={np.round(profile.q, 3)}")

    # Estimated hardware time-to-solution from the FeFET timing model.
    time_to_solution = solver.time_to_solution_s(batch)
    print(f"  est. hardware time-to-solution: {time_to_solution * 1e6:.2f} us")


if __name__ == "__main__":
    main()
